package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"ctrlguard/internal/goofi"
	"ctrlguard/internal/tenant"
	"ctrlguard/internal/tune"
	"ctrlguard/internal/workload"
)

// errorBody is the uniform JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.log.Printf("encode response: %v", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// resolveTenant authenticates the request against the tenant registry
// using the Authorization header (Bearer or bare API key). On an open
// server every request maps to the default tenant; on a configured
// one an unknown or missing key is a 401.
func (s *Server) resolveTenant(w http.ResponseWriter, r *http.Request) (tenant.Tenant, bool) {
	ten, err := s.mgr.Registry().Resolve(r.Header.Get("Authorization"))
	if err != nil {
		s.writeError(w, http.StatusUnauthorized, "unknown or missing API key")
		return tenant.Tenant{}, false
	}
	return ten, true
}

// writeSubmitError maps admission failures onto overload-aware HTTP
// answers: rate limits and quotas are 429 (the former with the exact
// token wait), a full or draining queue is 503 — always an immediate
// answer, never a blocked request.
func (s *Server) writeSubmitError(w http.ResponseWriter, err error) {
	var rle *RateLimitError
	var qe *QuotaError
	switch {
	case errors.As(err, &rle):
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(rle.RetryAfter.Seconds()))))
		s.writeError(w, http.StatusTooManyRequests, "%v", err)
	case errors.As(err, &qe):
		s.writeError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "5")
		s.writeError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		s.writeError(w, http.StatusBadRequest, "%v", err)
	}
}

// handleSubmit validates a JSON campaign spec and enqueues it for the
// authenticated tenant.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	ten, ok := s.resolveTenant(w, r)
	if !ok {
		return
	}
	var spec goofi.CampaignSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad campaign spec: %v", err)
		return
	}
	c, err := s.mgr.SubmitAs(ten, spec)
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	s.log.Printf("campaign %s submitted by %s: %+v", c.ID, ten.Name, spec)
	w.Header().Set("Location", "/api/v1/campaigns/"+c.ID)
	s.writeJSON(w, http.StatusAccepted, c.Snapshot())
}

// handleList lists campaigns in submission order, optionally filtered
// by ?state=.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	stateFilter := State(r.URL.Query().Get("state"))
	views := make([]View, 0)
	for _, c := range s.mgr.List() {
		v := c.Snapshot()
		if stateFilter != "" && v.State != stateFilter {
			continue
		}
		views = append(views, v)
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"campaigns": views})
}

// campaign resolves {id}, writing 404 on miss.
func (s *Server) campaign(w http.ResponseWriter, r *http.Request) *Campaign {
	id := r.PathValue("id")
	c, err := s.mgr.Get(id)
	if err != nil {
		s.writeError(w, http.StatusNotFound, "no campaign %q", id)
		return nil
	}
	return c
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	if c := s.campaign(w, r); c != nil {
		s.writeJSON(w, http.StatusOK, c.Snapshot())
	}
}

// handleCancel cancels a queued or running campaign.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	c := s.campaign(w, r)
	if c == nil {
		return
	}
	stopped, err := s.mgr.Cancel(c.ID)
	if err != nil {
		s.writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	if !stopped {
		s.writeError(w, http.StatusConflict, "campaign %s already %s", c.ID, c.Snapshot().State)
		return
	}
	s.log.Printf("campaign %s cancelled", c.ID)
	s.writeJSON(w, http.StatusAccepted, c.Snapshot())
}

// report is the JSON answer of /report: the analysis phase over the
// campaign's stored records, optionally filtered.
type report struct {
	Campaign     string               `json:"campaign"`
	State        State                `json:"state"`
	Filters      map[string]string    `json:"filters,omitempty"`
	Records      int                  `json:"records"`
	Outcomes     map[string]int       `json:"outcomes"`
	Severe       int                  `json:"severe"`
	Detected     int                  `json:"detected"`
	TopElements  []goofi.ElementCount `json:"topElements,omitempty"`
	MaxDeviation struct {
		Min  float64 `json:"min"`
		Mean float64 `json:"mean"`
		Max  float64 `json:"max"`
	} `json:"maxDeviation"`
}

// handleReport runs the analysis phase over a campaign's records,
// reusing the goofi query layer. Filters: ?region=, ?outcome=,
// ?element=. With ?format=table the paper-style region table is
// returned as plain text instead.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	c := s.campaign(w, r)
	if c == nil {
		return
	}
	recs := c.Records()
	if len(recs) == 0 {
		s.writeError(w, http.StatusConflict, "campaign %s has no records yet (state %s)", c.ID, c.Snapshot().State)
		return
	}

	if r.URL.Query().Get("format") == "table" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		a := goofi.Analyze(recs)
		fmt.Fprintln(w, a.RenderRegionTable(fmt.Sprintf("Campaign %s (%d records)", c.ID, len(recs))))
		fmt.Fprintln(w, a.Summary())
		return
	}

	q := goofi.NewQuery(recs)
	filters := map[string]string{}
	if v := r.URL.Query().Get("region"); v != "" {
		filters["region"] = v
		q = q.ByRegion(v)
	}
	if v := r.URL.Query().Get("element"); v != "" {
		filters["element"] = v
		q = q.ByElement(v)
	}
	if v := r.URL.Query().Get("outcome"); v != "" {
		filters["outcome"] = v
		q = q.Where(func(rec goofi.Record) bool { return rec.Outcome == v })
	}

	rep := report{
		Campaign: c.ID,
		State:    c.Snapshot().State,
		Filters:  filters,
		Records:  q.Len(),
		Outcomes: map[string]int{},
		Severe:   q.Severe().Len(),
		Detected: q.Detected("").Len(),
	}
	if len(filters) == 0 {
		rep.Filters = nil
	}
	for _, rec := range q.Records() {
		rep.Outcomes[rec.Outcome]++
	}
	rep.TopElements = q.TopElements(5)
	rep.MaxDeviation.Min, rep.MaxDeviation.Mean, rep.MaxDeviation.Max = q.MaxDeviationStats()
	s.writeJSON(w, http.StatusOK, rep)
}

// Raw-record pagination bounds: a campaign can hold hundreds of
// thousands of records, so /records never returns more than a page.
const (
	recordsDefaultLimit = 100
	recordsMaxLimit     = 1000
)

// handleRecords serves a campaign's raw records one page at a time:
// GET /api/v1/campaigns/{id}/records?offset=&limit=. Records are in
// experiment order; offset past the end yields an empty page rather
// than an error, so clients can walk until they get fewer than limit.
func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	c := s.campaign(w, r)
	if c == nil {
		return
	}
	offset, err := queryInt(r, "offset", 0)
	if err != nil || offset < 0 {
		s.writeError(w, http.StatusBadRequest, "offset must be a non-negative integer")
		return
	}
	limit, err := queryInt(r, "limit", recordsDefaultLimit)
	if err != nil || limit <= 0 || limit > recordsMaxLimit {
		s.writeError(w, http.StatusBadRequest, "limit must be an integer in [1,%d]", recordsMaxLimit)
		return
	}
	page, total, err := c.RecordPage(offset, limit)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "reading records: %v", err)
		return
	}
	if page == nil {
		page = []goofi.Record{}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"campaign": c.ID,
		"total":    total,
		"offset":   offset,
		"limit":    limit,
		"count":    len(page),
		"records":  page,
	})
}

// queryInt parses an optional integer query parameter.
func queryInt(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	return strconv.Atoi(v)
}

// handleSubmitTune validates a JSON tuning spec and enqueues a
// design-space search job. The job shares the campaign endpoints for
// listing, state, events, and cancellation; its outcome is served by
// /api/v1/tune/{id}/result once done.
func (s *Server) handleSubmitTune(w http.ResponseWriter, r *http.Request) {
	ten, ok := s.resolveTenant(w, r)
	if !ok {
		return
	}
	var spec tune.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad tune spec: %v", err)
		return
	}
	c, err := s.mgr.SubmitTuneAs(ten, spec)
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	s.log.Printf("tune job %s submitted by %s: %d planned evaluations", c.ID, ten.Name, c.Snapshot().Total)
	w.Header().Set("Location", "/api/v1/tune/"+c.ID+"/result")
	s.writeJSON(w, http.StatusAccepted, c.Snapshot())
}

// handleTuneResult serves a finished tune job's outcome: the Pareto
// front, the baseline, and the recommendation.
func (s *Server) handleTuneResult(w http.ResponseWriter, r *http.Request) {
	c := s.campaign(w, r)
	if c == nil {
		return
	}
	if c.Kind != KindTune {
		s.writeError(w, http.StatusConflict, "campaign %s is not a tune job", c.ID)
		return
	}
	outcome := c.Outcome()
	if outcome == nil {
		s.writeError(w, http.StatusConflict, "tune job %s has no result yet (state %s)", c.ID, c.Snapshot().State)
		return
	}
	s.writeJSON(w, http.StatusOK, outcome)
}

// handleVariants lists the workload variants a spec may name.
func (s *Server) handleVariants(w http.ResponseWriter, _ *http.Request) {
	vs := workload.Variants()
	names := make([]string, len(vs))
	for i, v := range vs {
		names[i] = string(v)
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"variants": names})
}

// handleMetrics serves the ctrlguardd expvar map as JSON.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	page := metrics.page
	if page == nil {
		fmt.Fprintln(w, "{}")
		return
	}
	fmt.Fprintln(w, page.String())
}
