package server

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"ctrlguard/internal/goofi"
	"ctrlguard/internal/tune"
)

// Kind distinguishes the job types the manager runs: plain
// fault-injection campaigns and design-space tuning searches.
type Kind string

const (
	KindCampaign Kind = "campaign"
	KindTune     Kind = "tune"
)

// The original GOOFI was an interactive service: campaigns were queued
// through its GUI and every experiment landed in a SQL database for
// later analysis. Manager is that service core for ctrlguardd — a
// bounded job queue feeding a pool of campaign runners, each campaign
// executing through goofi.RunContext with live progress fan-out and
// JSONL persistence.

// State is a campaign's lifecycle stage.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Event is one progress update on a campaign's event stream.
type Event struct {
	Type     string         `json:"type"` // "snapshot", "progress", or a terminal state
	Campaign string         `json:"campaign"`
	State    State          `json:"state"`
	Done     int            `json:"done"`
	Total    int            `json:"total"`
	Outcomes map[string]int `json:"outcomes,omitempty"`
	Error    string         `json:"error,omitempty"`
}

// Campaign is one queued, running, or finished fault-injection job.
type Campaign struct {
	ID       string
	Kind     Kind
	Spec     goofi.CampaignSpec
	TuneSpec *tune.Spec // set when Kind == KindTune
	Created  time.Time

	mu       sync.Mutex
	state    State
	outcome  *tune.Outcome // tune jobs: the finished search
	started  time.Time
	finished time.Time
	done     int
	total    int
	outcomes map[string]int
	errMsg   string
	records  []goofi.Record
	dataPath string
	cancel   context.CancelFunc
	subs     map[chan Event]struct{}
	doneCh   chan struct{} // closed on reaching a terminal state
}

// View is the JSON representation of a campaign's current state.
type View struct {
	ID          string             `json:"id"`
	Kind        Kind               `json:"kind"`
	State       State              `json:"state"`
	Spec        goofi.CampaignSpec `json:"spec"`
	TuneSpec    *tune.Spec         `json:"tuneSpec,omitempty"`
	Created     time.Time          `json:"created"`
	Started     *time.Time         `json:"started,omitempty"`
	Finished    *time.Time         `json:"finished,omitempty"`
	Done        int                `json:"done"`
	Total       int                `json:"total"`
	Outcomes    map[string]int     `json:"outcomes,omitempty"`
	Records     int                `json:"records"`
	RecordsPath string             `json:"recordsPath,omitempty"`
	Error       string             `json:"error,omitempty"`
}

// Snapshot returns a consistent copy of the campaign's state.
func (c *Campaign) Snapshot() View {
	c.mu.Lock()
	defer c.mu.Unlock()
	v := View{
		ID:          c.ID,
		Kind:        c.Kind,
		State:       c.state,
		Spec:        c.Spec,
		TuneSpec:    c.TuneSpec,
		Created:     c.Created,
		Done:        c.done,
		Total:       c.total,
		Outcomes:    copyCounts(c.outcomes),
		Records:     len(c.records),
		RecordsPath: c.dataPath,
		Error:       c.errMsg,
	}
	if !c.started.IsZero() {
		t := c.started
		v.Started = &t
	}
	if !c.finished.IsZero() {
		t := c.finished
		v.Finished = &t
	}
	return v
}

// Records returns the campaign's completed experiment records.
func (c *Campaign) Records() []goofi.Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]goofi.Record(nil), c.records...)
}

// Subscribe registers a progress listener. The returned channel
// receives an initial snapshot, then progress events (dropped rather
// than blocking a slow reader), and is signalled done via Done().
// cancel must be called when the listener goes away.
func (c *Campaign) Subscribe() (<-chan Event, func()) {
	ch := make(chan Event, 64)
	c.mu.Lock()
	ch <- c.eventLocked("snapshot")
	c.subs[ch] = struct{}{}
	c.mu.Unlock()
	return ch, func() {
		c.mu.Lock()
		delete(c.subs, ch)
		c.mu.Unlock()
	}
}

// Done returns a channel closed when the campaign reaches a terminal
// state.
func (c *Campaign) Done() <-chan struct{} { return c.doneCh }

// eventLocked builds an event from the current state; c.mu must be held.
func (c *Campaign) eventLocked(typ string) Event {
	return Event{
		Type:     typ,
		Campaign: c.ID,
		State:    c.state,
		Done:     c.done,
		Total:    c.total,
		Outcomes: copyCounts(c.outcomes),
		Error:    c.errMsg,
	}
}

// broadcastLocked fans an event out to subscribers without blocking;
// c.mu must be held.
func (c *Campaign) broadcastLocked(ev Event) {
	for ch := range c.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop; it re-syncs from Done()+Snapshot
		}
	}
}

func copyCounts(m map[string]int) map[string]int {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// ErrQueueFull is returned by Submit when the bounded queue is at
// capacity — the service sheds load instead of buffering unboundedly.
var ErrQueueFull = errors.New("server: campaign queue is full")

// ErrNotFound is returned for unknown campaign IDs.
var ErrNotFound = errors.New("server: no such campaign")

// Manager owns the campaign queue and worker pool.
type Manager struct {
	queue   chan *Campaign
	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
	dataDir string

	mu     sync.Mutex
	jobs   map[string]*Campaign
	order  []string // submission order, for stable listing
	nextID int
}

// NewManager starts a manager with the given number of concurrent
// campaign runners (min 1), a bounded queue of queueDepth (min 1), and
// an optional dataDir to which each finished campaign's records are
// persisted as <id>.jsonl.
func NewManager(workers, queueDepth int, dataDir string) *Manager {
	if workers <= 0 {
		workers = 1
	}
	if queueDepth <= 0 {
		queueDepth = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		queue:   make(chan *Campaign, queueDepth),
		baseCtx: ctx,
		stop:    cancel,
		dataDir: dataDir,
		jobs:    make(map[string]*Campaign),
	}
	metricsInit(workers)
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.runner()
	}
	return m
}

// Close cancels running campaigns, stops the runners, and waits for
// them to exit. Queued campaigns are marked cancelled.
func (m *Manager) Close() {
	m.stop()
	// Drain jobs still sitting in the queue so runners can exit.
	for {
		select {
		case c := <-m.queue:
			c.finalize(nil, context.Canceled, "")
		default:
			m.wg.Wait()
			return
		}
	}
}

// Submit validates a spec and enqueues a campaign for execution.
func (m *Manager) Submit(spec goofi.CampaignSpec) (*Campaign, error) {
	if _, err := spec.Resolve(); err != nil {
		return nil, err
	}
	c := &Campaign{
		Kind:     KindCampaign,
		Spec:     spec,
		Created:  time.Now(),
		state:    StateQueued,
		total:    spec.Experiments,
		outcomes: make(map[string]int),
		subs:     make(map[chan Event]struct{}),
		doneCh:   make(chan struct{}),
	}
	if spec.Sequential() {
		c.total = spec.MaxExperiments // upper bound; 0 = engine default
	}
	return m.enqueue(c)
}

// SubmitTune validates a tuning spec and enqueues a design-space
// search job. It shares the campaign queue, listing, events, and
// cancellation machinery; progress counts candidate evaluations
// against tune.Spec.PlannedEvaluations' upper bound.
func (m *Manager) SubmitTune(spec tune.Spec) (*Campaign, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	c := &Campaign{
		Kind:     KindTune,
		TuneSpec: &spec,
		Created:  time.Now(),
		state:    StateQueued,
		total:    spec.PlannedEvaluations(),
		outcomes: make(map[string]int),
		subs:     make(map[chan Event]struct{}),
		doneCh:   make(chan struct{}),
	}
	return m.enqueue(c)
}

// enqueue assigns an ID and queues a job under the manager lock.
func (m *Manager) enqueue(c *Campaign) (*Campaign, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c.ID = fmt.Sprintf("c%06d", m.nextID+1)
	select {
	case m.queue <- c:
	default:
		return nil, ErrQueueFull // shed without consuming an ID
	}
	m.nextID++
	m.jobs[c.ID] = c
	m.order = append(m.order, c.ID)
	metrics.CampaignsQueued.Add(1)
	return c, nil
}

// Get returns a campaign by ID.
func (m *Manager) Get(id string) (*Campaign, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return c, nil
}

// List returns all campaigns in submission order.
func (m *Manager) List() []*Campaign {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Campaign, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// Cancel stops a queued or running campaign. Cancelling a campaign
// that already reached a terminal state is a no-op reporting false.
func (m *Manager) Cancel(id string) (bool, error) {
	c, err := m.Get(id)
	if err != nil {
		return false, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case c.state.Terminal():
		return false, nil
	case c.cancel != nil: // running: stop at the next experiment boundary
		c.cancel()
		return true, nil
	default: // still queued: mark dead; the runner discards it
		c.state = StateCancelled
		c.finished = time.Now()
		metrics.CampaignsQueued.Add(-1)
		metrics.CampaignsCancelled.Add(1)
		c.broadcastLocked(c.eventLocked(string(StateCancelled)))
		close(c.doneCh)
		return true, nil
	}
}

// runner is one worker of the campaign pool.
func (m *Manager) runner() {
	defer m.wg.Done()
	for {
		select {
		case <-m.baseCtx.Done():
			return
		case c := <-m.queue:
			m.execute(c)
		}
	}
}

// execute runs one campaign to completion (or cancellation).
func (m *Manager) execute(c *Campaign) {
	ctx, cancel := context.WithCancel(m.baseCtx)
	defer cancel()

	c.mu.Lock()
	if c.state.Terminal() { // cancelled while queued
		c.mu.Unlock()
		return
	}
	c.state = StateRunning
	c.started = time.Now()
	c.cancel = cancel
	c.broadcastLocked(c.eventLocked("progress"))
	c.mu.Unlock()
	metrics.CampaignsQueued.Add(-1)
	metrics.CampaignsRunning.Add(1)
	metrics.BusyWorkers.Add(1)
	defer metrics.CampaignsRunning.Add(-1)
	defer metrics.BusyWorkers.Add(-1)

	if c.Kind == KindTune {
		m.runTune(ctx, c)
		return
	}

	cfg, err := c.Spec.Resolve()
	if err != nil { // validated at Submit; only a programming error lands here
		c.finalize(nil, err, "")
		return
	}
	cfg.OnRecord = func(rec goofi.Record) {
		metrics.ExperimentsTotal.Add(1)
		c.mu.Lock()
		c.done++
		c.outcomes[rec.Outcome]++
		c.broadcastLocked(c.eventLocked("progress"))
		c.mu.Unlock()
	}

	var recs []goofi.Record
	var runErr error
	if c.Spec.Sequential() {
		res, err := goofi.RunUntilPrecisionContext(ctx, goofi.PrecisionConfig{
			Campaign:        cfg,
			TargetHalfWidth: c.Spec.Precision,
			MaxExperiments:  c.Spec.MaxExperiments,
		})
		if res != nil {
			recs = res.Records
		}
		runErr = err
	} else {
		res, err := goofi.RunContext(ctx, cfg)
		if res != nil {
			recs = res.Records
		}
		runErr = err
	}

	path := ""
	if m.dataDir != "" && len(recs) > 0 {
		path = filepath.Join(m.dataDir, c.ID+".jsonl")
		if err := goofi.SaveRecords(path, recs); err != nil {
			path = ""
			if runErr == nil {
				runErr = err
			}
		}
	}
	c.finalize(recs, runErr, path)
}

// runTune executes a tuning job: the full design-space search, with
// candidate-evaluation progress fanned out to subscribers and the
// final per-candidate results persisted like campaign records.
func (m *Manager) runTune(ctx context.Context, c *Campaign) {
	outcome, err := tune.Search(ctx, *c.TuneSpec, func(done, total int) {
		c.mu.Lock()
		c.done, c.total = done, total
		c.broadcastLocked(c.eventLocked("progress"))
		c.mu.Unlock()
	})

	path := ""
	if m.dataDir != "" && outcome != nil && len(outcome.Results) > 0 {
		path = filepath.Join(m.dataDir, c.ID+".jsonl")
		if saveErr := tune.SaveResults(path, outcome.Results); saveErr != nil {
			path = ""
			if err == nil {
				err = saveErr
			}
		}
	}
	c.mu.Lock()
	c.outcome = outcome
	c.mu.Unlock()
	c.finalize(nil, err, path)
}

// Outcome returns a tune job's finished search, or nil while the
// search is still running (or for plain campaigns).
func (c *Campaign) Outcome() *tune.Outcome {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.outcome
}

// finalize records the campaign's terminal state and notifies
// subscribers.
func (c *Campaign) finalize(recs []goofi.Record, err error, dataPath string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state.Terminal() {
		return
	}
	wasQueued := c.state == StateQueued
	c.records = recs
	c.dataPath = dataPath
	c.finished = time.Now()
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		c.state = StateCancelled
		metrics.CampaignsCancelled.Add(1)
	case err != nil:
		c.state = StateFailed
		c.errMsg = err.Error()
		metrics.CampaignsFailed.Add(1)
	default:
		c.state = StateDone
		metrics.CampaignsDone.Add(1)
	}
	if wasQueued {
		metrics.CampaignsQueued.Add(-1)
	}
	c.broadcastLocked(c.eventLocked(string(c.state)))
	close(c.doneCh)
}
