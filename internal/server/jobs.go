package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"ctrlguard/internal/castore"
	"ctrlguard/internal/dist"
	"ctrlguard/internal/goofi"
	"ctrlguard/internal/journal"
	"ctrlguard/internal/tenant"
	"ctrlguard/internal/tune"
)

// Kind distinguishes the job types the manager runs: plain
// fault-injection campaigns and design-space tuning searches.
type Kind string

const (
	KindCampaign Kind = "campaign"
	KindTune     Kind = "tune"
)

// The original GOOFI was an interactive service: campaigns were queued
// through its GUI and every experiment landed in a SQL database for
// later analysis. Manager is that service core for ctrlguardd — a
// bounded job queue feeding a pool of campaign runners, each campaign
// executing through goofi.RunContext with live progress fan-out and
// JSONL persistence.
//
// The manager practices the paper's best-effort recovery on itself:
// every job lifecycle transition is written through an fsync'd journal
// before the server acknowledges it, each completed experiment is
// appended to the campaign's record file as it happens, and a restarted
// manager replays the journal, re-enqueues every interrupted campaign,
// and resumes it from its persisted records — so a crash costs the tail
// of the running campaign, never the queue.

// State is a campaign's lifecycle stage.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"

	// StateInterrupted marks a campaign stopped by a shutdown rather
	// than by its user: a graceful SIGTERM journals running and queued
	// jobs as interrupted, and the next start re-enqueues and resumes
	// them. It is terminal for this process's lifetime only.
	StateInterrupted State = "interrupted"
)

// Terminal reports whether the state is final (for this process).
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled || s == StateInterrupted
}

// Event is one progress update on a campaign's event stream.
type Event struct {
	Type     string         `json:"type"` // "snapshot", "progress", or a terminal state
	Campaign string         `json:"campaign"`
	State    State          `json:"state"`
	Done     int            `json:"done"`
	Total    int            `json:"total"`
	Outcomes map[string]int `json:"outcomes,omitempty"`
	Error    string         `json:"error,omitempty"`
}

// Campaign is one queued, running, or finished fault-injection job.
type Campaign struct {
	ID       string
	Kind     Kind
	Spec     goofi.CampaignSpec
	TuneSpec *tune.Spec // set when Kind == KindTune
	Tenant   string     // owning tenant's name (immutable after creation)
	Created  time.Time

	// usageHeld and usageN are the campaign's charge against its
	// tenant's quota accounting; both are guarded by the Manager's
	// lock, not c.mu, because they change together with the usage map.
	usageHeld bool
	usageN    int

	mu         sync.Mutex
	state      State
	outcome    *tune.Outcome // tune jobs: the finished search
	started    time.Time
	finished   time.Time
	done       int
	total      int
	outcomes   map[string]int
	errMsg     string
	records    []goofi.Record
	dataPath   string
	segDir     string // live segmented record store (resume source)
	cacheHit   bool   // served from the content-addressed result cache
	resumed    bool // re-enqueued by journal recovery after a restart
	userCancel bool // cancelled via the API, as opposed to a shutdown
	faults     goofi.FaultStats
	prune      *goofi.PruneStats
	detect     *goofi.DetectStats
	shardsDone map[int]bool // journal-replayed completed shards (dist resume)
	cancel     context.CancelFunc
	subs       map[chan Event]struct{}
	doneCh     chan struct{} // closed on reaching a terminal state
}

// View is the JSON representation of a campaign's current state.
type View struct {
	ID          string             `json:"id"`
	Kind        Kind               `json:"kind"`
	State       State              `json:"state"`
	Tenant      string             `json:"tenant,omitempty"`
	CacheHit    bool               `json:"cacheHit,omitempty"`
	Spec        goofi.CampaignSpec `json:"spec"`
	TuneSpec    *tune.Spec         `json:"tuneSpec,omitempty"`
	Created     time.Time          `json:"created"`
	Started     *time.Time         `json:"started,omitempty"`
	Finished    *time.Time         `json:"finished,omitempty"`
	Done        int                `json:"done"`
	Total       int                `json:"total"`
	Outcomes    map[string]int     `json:"outcomes,omitempty"`
	Records     int                `json:"records"`
	RecordsPath string             `json:"recordsPath,omitempty"`
	Resumed     bool               `json:"resumed,omitempty"`
	Faults      goofi.FaultStats   `json:"faults,omitempty"`
	Prune       *goofi.PruneStats  `json:"prune,omitempty"`
	Detect      *goofi.DetectStats `json:"detect,omitempty"`
	Error       string             `json:"error,omitempty"`
}

// Snapshot returns a consistent copy of the campaign's state.
func (c *Campaign) Snapshot() View {
	c.mu.Lock()
	defer c.mu.Unlock()
	v := View{
		ID:          c.ID,
		Kind:        c.Kind,
		State:       c.state,
		Tenant:      c.Tenant,
		CacheHit:    c.cacheHit,
		Spec:        c.Spec,
		TuneSpec:    c.TuneSpec,
		Created:     c.Created,
		Done:        c.done,
		Total:       c.total,
		Outcomes:    copyCounts(c.outcomes),
		Records:     len(c.records),
		RecordsPath: c.dataPath,
		Resumed:     c.resumed,
		Faults:      c.faults,
		Prune:       c.prune,
		Detect:      c.detect,
		Error:       c.errMsg,
	}
	if !c.started.IsZero() {
		t := c.started
		v.Started = &t
	}
	if !c.finished.IsZero() {
		t := c.finished
		v.Finished = &t
	}
	return v
}

// Records returns the campaign's completed experiment records. For a
// job restored from the journal after a restart, the records are loaded
// lazily from its persisted JSONL file (tolerating a crash-torn tail).
func (c *Campaign) Records() []goofi.Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.records == nil && c.Kind == KindCampaign {
		switch {
		case c.dataPath != "":
			recs, err := goofi.LoadRecords(c.dataPath)
			var trunc *goofi.TruncatedError
			if err == nil || errors.As(err, &trunc) {
				c.records = recs
			}
		case c.segDir != "":
			// No canonical file yet (crash before the final rewrite):
			// fold the partial run's segments instead.
			if recs, err := goofi.LoadSegmentRecords(c.segDir); err == nil {
				c.records = recs
			}
		}
	}
	return append([]goofi.Record(nil), c.records...)
}

// RecordPage returns records[offset : offset+limit] plus the total
// count. Unlike Records it never materializes the full set for a
// disk-backed campaign: the canonical file is scanned record-by-record
// through a RecordScanner, and a segmented store pages through only
// the segments the window intersects.
func (c *Campaign) RecordPage(offset, limit int) ([]goofi.Record, int, error) {
	c.mu.Lock()
	inMemory := c.records != nil || c.Kind != KindCampaign
	dataPath := c.dataPath
	segDir := c.segDir
	c.mu.Unlock()
	if inMemory {
		recs := c.Records()
		total := len(recs)
		lo := min(offset, total)
		hi := min(lo+limit, total)
		return recs[lo:hi:hi], total, nil
	}
	if dataPath != "" {
		f, err := os.Open(dataPath)
		if err == nil {
			defer f.Close()
			var page []goofi.Record
			total := 0
			sc := goofi.NewRecordScanner(f)
			for sc.Scan() {
				if total >= offset && len(page) < limit {
					page = append(page, sc.Record())
				}
				total++
			}
			var trunc *goofi.TruncatedError
			if serr := sc.Err(); serr != nil && !errors.As(serr, &trunc) {
				return nil, 0, serr
			}
			return page, total, nil
		}
	}
	if segDir != "" {
		return goofi.SegmentPage(segDir, offset, limit)
	}
	return nil, 0, nil
}

// Subscribe registers a progress listener. The returned channel
// receives an initial snapshot, then progress events (dropped rather
// than blocking a slow reader), and is signalled done via Done().
// cancel must be called when the listener goes away.
func (c *Campaign) Subscribe() (<-chan Event, func()) {
	ch := make(chan Event, 64)
	c.mu.Lock()
	ch <- c.eventLocked("snapshot")
	c.subs[ch] = struct{}{}
	c.mu.Unlock()
	return ch, func() {
		c.mu.Lock()
		delete(c.subs, ch)
		c.mu.Unlock()
	}
}

// Done returns a channel closed when the campaign reaches a terminal
// state.
func (c *Campaign) Done() <-chan struct{} { return c.doneCh }

// eventLocked builds an event from the current state; c.mu must be held.
func (c *Campaign) eventLocked(typ string) Event {
	return Event{
		Type:     typ,
		Campaign: c.ID,
		State:    c.state,
		Done:     c.done,
		Total:    c.total,
		Outcomes: copyCounts(c.outcomes),
		Error:    c.errMsg,
	}
}

// broadcastLocked fans an event out to subscribers without blocking;
// c.mu must be held.
func (c *Campaign) broadcastLocked(ev Event) {
	for ch := range c.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop; it re-syncs from Done()+Snapshot
		}
	}
}

func copyCounts(m map[string]int) map[string]int {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// ErrQueueFull is returned by Submit when the bounded queue is at
// capacity — the service sheds load instead of buffering unboundedly.
var ErrQueueFull = errors.New("server: campaign queue is full")

// ErrNotFound is returned for unknown campaign IDs.
var ErrNotFound = errors.New("server: no such campaign")

// Options configures a Manager.
type Options struct {
	// Workers is the number of campaigns executed concurrently (min 1).
	Workers int
	// QueueDepth bounds the number of campaigns waiting to run (min 1).
	// Jobs re-enqueued by journal recovery do not count against it.
	QueueDepth int
	// DataDir, if set, receives each campaign's records as <id>.jsonl —
	// appended experiment-by-experiment while the campaign runs (the
	// crash-recovery source), atomically rewritten in experiment order
	// when it finishes.
	DataDir string
	// JournalPath, if set, is the write-ahead journal of job lifecycle
	// events. With a journal, a restarted manager re-enqueues and
	// resumes every campaign that was queued, running, or interrupted.
	JournalPath string
	// NoResume replays the journal (finished jobs stay visible) but
	// leaves interrupted jobs in StateInterrupted instead of re-running
	// them.
	NoResume bool
	// Logger receives recovery and journal diagnostics (default
	// log.Default).
	Logger *log.Logger
	// ConfigHook, if non-nil, is applied to every campaign's resolved
	// goofi.Config just before execution. TEST-ONLY: the chaos harness
	// uses it to inject worker panics, hangs, and timeouts; production
	// configs leave it nil.
	ConfigHook func(*goofi.Config)

	// Executors, when positive, turns the manager into a distributed
	// coordinator: eligible campaigns are sharded across this many
	// local ctrlexec subprocesses (plus any registered remote
	// executors) instead of running in-process. Requires ExecBin.
	Executors int
	// ExecBin is the ctrlexec binary local executor slots spawn.
	ExecBin string
	// ExecArgs are extra arguments for spawned executors (resource
	// limits like -timeout and -mem).
	ExecArgs []string
	// ShardSize is the experiments-per-shard for distributed campaigns
	// (default dist.DefaultShardSize).
	ShardSize int
	// LeaseTTL overrides the shard lease TTL (default
	// dist.DefaultLeaseTTL). Tests shrink it to exercise expiry fast.
	LeaseTTL time.Duration
	// DistTaskHook, if non-nil, observes (and may mutate) every shard
	// task before it is leased. TEST-ONLY: the chaos suite plants
	// executor kill/hang knobs through it.
	DistTaskHook func(*dist.ShardTask)
	// ExecSpawnHook, if non-nil, observes every spawned local executor
	// process. TEST-ONLY: the chaos suite SIGKILLs executors through it.
	ExecSpawnHook func(task dist.ShardTask, pid int)

	// Tenants is the multi-tenant admission configuration. Empty runs
	// the server open: every request is the default tenant, unlimited.
	Tenants []tenant.Tenant
	// CacheDir, if set, enables content-addressed campaign memoization:
	// completed deterministic campaigns are filed under the hash of
	// (engine version, canonical spec) and duplicate submissions are
	// served from the cache without re-running.
	CacheDir string
	// CacheMaxBytes bounds the memoization cache (0 = unbounded);
	// least-recently-used results are evicted past it.
	CacheMaxBytes int64
	// SegmentBytes caps each incremental record segment (default
	// goofi.DefaultSegmentBytes).
	SegmentBytes int64
	// JournalMaxBytes triggers automatic journal compaction when the
	// write-ahead journal grows past it (0 = startup-only compaction).
	JournalMaxBytes int64
	// RetainAge, if positive, lets the retention sweep delete record
	// files of terminal campaigns finished longer ago than this.
	RetainAge time.Duration
	// RetainBytes, if positive, bounds the total bytes of terminal
	// campaigns' record files; oldest-finished are deleted first.
	RetainBytes int64
	// ExecTTL overrides how long a remote executor registration stays
	// live without a heartbeat (default 15s).
	ExecTTL time.Duration
}

// Manager owns the campaign queue and worker pool.
type Manager struct {
	queue      *tenant.FairQueue[*Campaign]
	queueDepth int
	baseCtx    context.Context
	stop       context.CancelFunc
	wg         sync.WaitGroup
	dataDir    string
	jnl        *journal.Journal
	jnlMax     int64
	logger     *log.Logger
	hook       func(*goofi.Config)
	closing    atomic.Bool // graceful shutdown: running jobs -> interrupted
	killed     atomic.Bool // test-only crash: suppress journal/terminal writes

	// Multi-tenant admission and result reuse (see admission.go,
	// cache.go, retention.go).
	tenants     *tenant.Registry
	cache       *castore.Store
	segBytes    int64
	retainAge   time.Duration
	retainBytes int64
	buckets     map[string]*tenant.Bucket // m.mu-guarded, one per tenant
	usage       map[string]*tenant.Usage  // m.mu-guarded quota accounting

	// Distributed-coordinator state (see dist.go).
	distWorkers  int
	execBin      string
	execArgs     []string
	shardSize    int
	leaseTTL     time.Duration
	registry     *execRegistry
	distTaskHook func(*dist.ShardTask)
	spawnHook    func(task dist.ShardTask, pid int)

	mu     sync.Mutex
	jobs   map[string]*Campaign
	order  []string // submission order, for stable listing
	nextID int
}

// NewManager starts a manager. When a journal is configured, the prior
// process's jobs are replayed before the worker pool starts: finished
// jobs become visible in their terminal states, and queued, running, or
// interrupted jobs are re-enqueued (unless NoResume) to resume from
// their persisted records.
func NewManager(opts Options) (*Manager, error) {
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 1
	}
	if opts.Logger == nil {
		opts.Logger = log.Default()
	}
	if opts.Executors > 0 && opts.ExecBin == "" {
		return nil, errors.New("server: Executors > 0 requires ExecBin (the ctrlexec binary to spawn)")
	}
	registry, err := tenant.NewRegistry(opts.Tenants)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		queueDepth:   opts.QueueDepth,
		baseCtx:      ctx,
		stop:         cancel,
		dataDir:      opts.DataDir,
		jnlMax:       opts.JournalMaxBytes,
		logger:       opts.Logger,
		hook:         opts.ConfigHook,
		tenants:      registry,
		segBytes:     opts.SegmentBytes,
		retainAge:    opts.RetainAge,
		retainBytes:  opts.RetainBytes,
		buckets:      make(map[string]*tenant.Bucket),
		usage:        make(map[string]*tenant.Usage),
		jobs:         make(map[string]*Campaign),
		distWorkers:  opts.Executors,
		execBin:      opts.ExecBin,
		execArgs:     opts.ExecArgs,
		shardSize:    opts.ShardSize,
		leaseTTL:     opts.LeaseTTL,
		registry:     newExecRegistry(opts.ExecTTL),
		distTaskHook: opts.DistTaskHook,
		spawnHook:    opts.ExecSpawnHook,
	}
	if opts.CacheDir != "" {
		cache, err := castore.Open(opts.CacheDir, opts.CacheMaxBytes)
		if err != nil {
			cancel()
			return nil, err
		}
		m.cache = cache
	}
	m.queue = tenant.NewFairQueue[*Campaign](opts.QueueDepth)
	var pending []*Campaign
	if opts.JournalPath != "" {
		jnl, entries, err := journal.Open(opts.JournalPath)
		if err != nil {
			cancel()
			return nil, err
		}
		m.jnl = jnl
		pending = m.restoreJobs(entries, !opts.NoResume)
	}
	metricsInit(opts.Workers)
	for _, c := range pending {
		// Recovered jobs ride along without eating into the queue depth
		// for new submissions, but they re-charge their tenant's quota
		// accounting so a restart never resets it.
		m.queue.PushRecovered(c.Tenant, m.fairWeight(c.Tenant), c)
		m.chargeUsage(c)
		m.appendJournal(journal.Entry{Job: c.ID, Type: journal.EventResumed, State: string(StateQueued), Tenant: c.Tenant})
		metrics.CampaignsQueued.Add(1)
		metrics.CampaignsResumed.Add(1)
		m.logger.Printf("campaign %s resumed from journal (%s, %d/%d done before restart)",
			c.ID, c.Kind, c.done, c.total)
	}
	for i := 0; i < opts.Workers; i++ {
		m.wg.Add(1)
		go m.runner()
	}
	if m.dataDir != "" {
		m.wg.Add(1)
		go m.retentionLoop()
	}
	return m, nil
}

// restoreJobs folds replayed journal entries into the job table and
// returns the campaigns to re-enqueue. Also compacts a journal that has
// grown well past its folded size.
func (m *Manager) restoreJobs(entries []journal.Entry, resume bool) []*Campaign {
	statuses := journal.Reduce(entries)
	if len(entries) > 2*len(statuses)+64 {
		if err := m.jnl.Compact(statuses); err != nil {
			m.logger.Printf("journal compaction failed (continuing): %v", err)
		}
	}
	var pending []*Campaign
	for _, s := range statuses {
		c := &Campaign{
			ID:       s.Job,
			Kind:     Kind(s.Kind),
			Created:  s.Submitted,
			total:    s.Total,
			done:     s.Done,
			outcomes: map[string]int{},
			subs:     make(map[chan Event]struct{}),
			doneCh:   make(chan struct{}),
		}
		for k, v := range s.Outcomes {
			c.outcomes[k] = v
		}
		c.shardsDone = s.ShardsDone
		if len(s.Spec) > 0 {
			if err := json.Unmarshal(s.Spec, &c.Spec); err != nil {
				m.logger.Printf("journal: job %s has an unreadable spec, dropping: %v", s.Job, err)
				continue
			}
		}
		if len(s.TuneSpec) > 0 {
			c.TuneSpec = new(tune.Spec)
			if err := json.Unmarshal(s.TuneSpec, c.TuneSpec); err != nil {
				m.logger.Printf("journal: job %s has an unreadable tune spec, dropping: %v", s.Job, err)
				continue
			}
		}
		c.Tenant = s.Tenant
		if c.Tenant == "" {
			c.Tenant = tenant.DefaultName // pre-tenancy journal entry
		}
		if m.dataDir != "" {
			path := filepath.Join(m.dataDir, c.ID+".jsonl")
			if _, err := os.Stat(path); err == nil {
				c.dataPath = path
			}
			segDir := filepath.Join(m.dataDir, c.ID+".records")
			if _, err := os.Stat(segDir); err == nil {
				c.segDir = segDir
			}
		}
		var num int
		if _, err := fmt.Sscanf(c.ID, "c%d", &num); err == nil && num > m.nextID {
			m.nextID = num
		}

		live := !s.Terminal || s.State == string(StateInterrupted)
		switch {
		case live && resume:
			c.state = StateQueued
			c.resumed = true
			c.errMsg = ""
			pending = append(pending, c)
		case live:
			c.state = StateInterrupted
			c.errMsg = s.Error
			c.finished = s.Finished
			close(c.doneCh)
		default:
			c.state = State(s.State)
			c.errMsg = s.Error
			c.finished = s.Finished
			close(c.doneCh)
		}
		m.jobs[c.ID] = c
		m.order = append(m.order, c.ID)
	}
	return pending
}

// appendJournal writes a journal entry, if a journal is configured.
// Journal failures degrade durability, not availability: they are
// logged and the campaign proceeds.
func (m *Manager) appendJournal(e journal.Entry) {
	if m.jnl == nil || m.killed.Load() {
		return
	}
	if err := m.jnl.Append(e); err != nil {
		m.logger.Printf("journal append failed (job %s, %s): %v", e.Job, e.Type, err)
	}
	// Long-running servers fold the journal back down once it outgrows
	// its size budget, preserving in-flight jobs' shard completions.
	ran, err := m.jnl.CompactIfOver(m.jnlMax)
	if err != nil {
		m.logger.Printf("journal auto-compaction failed (continuing): %v", err)
	} else if ran {
		metrics.JournalCompactions.Add(1)
		m.logger.Printf("journal compacted (exceeded %d bytes)", m.jnlMax)
	}
}

// journalTerminal records a campaign's terminal state.
func (m *Manager) journalTerminal(c *Campaign) {
	if m.jnl == nil {
		return
	}
	v := c.Snapshot()
	m.appendJournal(journal.Entry{
		Job: c.ID, Type: journal.EventTerminal,
		State: string(v.State), Done: v.Done, Total: v.Total,
		Outcomes: v.Outcomes, Error: v.Error, Tenant: c.Tenant,
	})
}

// Close gracefully stops the manager: running campaigns are cancelled
// at the next experiment boundary and journaled as interrupted (so a
// journal-backed restart resumes them), queued campaigns likewise, and
// the runners are waited for.
func (m *Manager) Close() {
	m.closing.Store(true)
	m.stop()
	m.queue.Close()
	// Shed queued-but-unstarted jobs as interrupted (resumable): the
	// graceful-drain half of the paper's best-effort recovery applied
	// to the service itself.
	for _, c := range m.queue.Drain() {
		m.finalize(c, nil, goofi.FaultStats{}, context.Canceled, c.Snapshot().RecordsPath)
	}
	m.wg.Wait()
	if m.jnl != nil {
		m.jnl.Close()
	}
}

// kill is the chaos harness's SIGKILL: stop the runners dead without
// journaling terminal states or rewriting record files, exactly as if
// the process had vanished. Test-only.
func (m *Manager) kill() {
	m.killed.Store(true)
	m.stop()
	m.queue.Close()
	m.wg.Wait()
	if m.jnl != nil {
		m.jnl.Close()
	}
}

// Submit validates a spec and enqueues a campaign for execution as
// the default tenant (the open, single-tenant mode).
func (m *Manager) Submit(spec goofi.CampaignSpec) (*Campaign, error) {
	return m.SubmitAs(tenant.Default(), spec)
}

// SubmitTune validates a tuning spec and enqueues a design-space
// search job as the default tenant. It shares the campaign queue,
// listing, events, and cancellation machinery; progress counts
// candidate evaluations against tune.Spec.PlannedEvaluations' bound.
func (m *Manager) SubmitTune(spec tune.Spec) (*Campaign, error) {
	return m.SubmitTuneAs(tenant.Default(), spec)
}

// Get returns a campaign by ID.
func (m *Manager) Get(id string) (*Campaign, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return c, nil
}

// List returns all campaigns in submission order.
func (m *Manager) List() []*Campaign {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Campaign, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// Cancel stops a queued or running campaign. Cancelling a campaign
// that already reached a terminal state is a no-op reporting false.
func (m *Manager) Cancel(id string) (bool, error) {
	c, err := m.Get(id)
	if err != nil {
		return false, err
	}
	c.mu.Lock()
	switch {
	case c.state.Terminal():
		c.mu.Unlock()
		return false, nil
	case c.cancel != nil: // running: stop at the next experiment boundary
		c.userCancel = true
		c.cancel()
		c.mu.Unlock()
		return true, nil
	default: // still queued: mark dead; the runner discards it
		c.userCancel = true
		c.state = StateCancelled
		c.finished = time.Now()
		metrics.CampaignsQueued.Add(-1)
		metrics.CampaignsCancelled.Add(1)
		c.broadcastLocked(c.eventLocked(string(StateCancelled)))
		close(c.doneCh)
		c.mu.Unlock()
		m.releaseUsage(c)
		m.journalTerminal(c)
		return true, nil
	}
}

// runner is one worker of the campaign pool. It dispatches from the
// fair-share queue — the tenant with the smallest virtual pass — so
// under contention tenants complete work in proportion to their
// weights.
func (m *Manager) runner() {
	defer m.wg.Done()
	for {
		c, ok := m.queue.Pop()
		if !ok { // queue closed: shutdown
			return
		}
		m.execute(c)
	}
}

// journalProgressEvery throttles progress journaling: resume
// correctness comes from the per-record JSONL appends, so the journal
// only needs a coarse progress trail.
const journalProgressEvery = 2 * time.Second

// execute runs one campaign to completion (or cancellation).
func (m *Manager) execute(c *Campaign) {
	ctx, cancel := context.WithCancel(m.baseCtx)
	defer cancel()

	c.mu.Lock()
	if c.state.Terminal() { // cancelled while queued
		c.mu.Unlock()
		return
	}
	c.state = StateRunning
	c.started = time.Now()
	// A resumed campaign re-counts progress from its salvaged records;
	// the journal's coarse counts are superseded.
	c.done = 0
	c.outcomes = make(map[string]int)
	c.cancel = cancel
	resumed := c.resumed
	c.broadcastLocked(c.eventLocked("progress"))
	c.mu.Unlock()
	metrics.CampaignsQueued.Add(-1)
	metrics.CampaignsRunning.Add(1)
	metrics.BusyWorkers.Add(1)
	defer metrics.CampaignsRunning.Add(-1)
	defer metrics.BusyWorkers.Add(-1)
	m.appendJournal(journal.Entry{Job: c.ID, Type: journal.EventStarted, State: string(StateRunning)})

	if c.Kind == KindTune {
		m.runTune(ctx, c)
		return
	}

	// With executors available, eligible campaigns run through the
	// distributed coordinator instead of this worker's goroutines.
	if m.distEligible(c) {
		m.executeDist(ctx, c, resumed)
		return
	}

	cfg, err := c.Spec.Resolve()
	if err != nil { // validated at Submit; only a programming error lands here
		m.finalize(c, nil, goofi.FaultStats{}, err, "")
		return
	}
	if m.hook != nil {
		m.hook(&cfg)
	}

	// Incremental persistence: each record is appended to the
	// campaign's segmented store (<id>.records/) as it completes, so a
	// crash leaves salvageable partial segments. On resume the salvaged
	// records seed goofi's Resume path; sequential (precision-driven)
	// campaigns restart from scratch because their per-batch experiment
	// IDs are not stable across runs.
	path := ""
	var seg *goofi.SegmentStore
	if m.dataDir != "" {
		path = filepath.Join(m.dataDir, c.ID+".jsonl")
		segDir := filepath.Join(m.dataDir, c.ID+".records")
		if !resumed || c.Spec.Sequential() {
			os.Remove(path) // stale files from an unjournaled earlier run
			os.RemoveAll(segDir)
		}
		var salvaged []goofi.Record
		seg, salvaged, err = goofi.OpenSegmentStore(segDir, m.segBytes)
		if err != nil {
			m.logger.Printf("campaign %s: incremental record store unavailable: %v", c.ID, err)
			seg = nil
		} else {
			c.mu.Lock()
			c.segDir = segDir
			c.mu.Unlock()
			if resumed && !c.Spec.Sequential() {
				// A graceful shutdown also leaves a partial canonical
				// <id>.jsonl (the final-rewrite path ran); merge it in.
				// Resume dedups by experiment ID, newest record wins.
				if legacy, lerr := goofi.LoadRecords(path); lerr == nil {
					salvaged = append(legacy, salvaged...)
				}
				cfg.Resume = salvaged
			}
		}
	}

	var lastJournal time.Time
	noteProgress := func(rec goofi.Record) {
		c.mu.Lock()
		c.done++
		c.outcomes[rec.Outcome]++
		done, total := c.done, c.total
		outcomes := copyCounts(c.outcomes)
		c.broadcastLocked(c.eventLocked("progress"))
		c.mu.Unlock()
		if time.Since(lastJournal) >= journalProgressEvery {
			lastJournal = time.Now()
			m.appendJournal(journal.Entry{Job: c.ID, Type: journal.EventProgress,
				Done: done, Total: total, Outcomes: outcomes})
		}
	}
	cfg.OnResume = func(recs []goofi.Record) {
		metrics.ExperimentsResumed.Add(int64(len(recs)))
		for _, rec := range recs {
			noteProgress(rec)
		}
	}
	cfg.OnRecord = func(rec goofi.Record) {
		metrics.ExperimentsTotal.Add(1)
		if seg != nil {
			if err := seg.Append(rec); err != nil {
				m.logger.Printf("campaign %s: record append failed: %v", c.ID, err)
				seg.Close()
				seg = nil
			}
		}
		noteProgress(rec)
	}

	var recs []goofi.Record
	var faults goofi.FaultStats
	var pruneStats *goofi.PruneStats
	var detStats *goofi.DetectStats
	var runErr error
	if c.Spec.Sequential() {
		res, err := goofi.RunUntilPrecisionContext(ctx, goofi.PrecisionConfig{
			Campaign:        cfg,
			TargetHalfWidth: c.Spec.Precision,
			MaxExperiments:  c.Spec.MaxExperiments,
		})
		if res != nil {
			recs = res.Records
			faults = res.Faults
			pruneStats = res.Prune
			detStats = res.Detect
		}
		runErr = err
	} else {
		res, err := goofi.RunContext(ctx, cfg)
		if res != nil {
			recs = res.Records
			faults = res.Faults
			pruneStats = res.Prune
			detStats = res.Detect
		}
		runErr = err
	}
	if pruneStats != nil {
		metrics.ExperimentsPlanned.Add(int64(pruneStats.Planned))
		metrics.ExperimentsSimulated.Add(int64(pruneStats.Simulated))
		metrics.ExperimentsPrunedDead.Add(int64(pruneStats.PrunedDead))
		metrics.ExperimentsCollapsed.Add(int64(pruneStats.Collapsed))
		c.mu.Lock()
		c.prune = pruneStats
		c.mu.Unlock()
	}
	if detStats != nil {
		metrics.DetectorCFEDetected.Add(int64(detStats.CFEDetected))
		metrics.DetectorAutomatonDetected.Add(int64(detStats.AutomatonDetected))
		metrics.DetectorFalsePositives.Add(int64(detStats.FalsePositives))
		c.mu.Lock()
		c.detect = detStats
		c.mu.Unlock()
	}

	if seg != nil {
		if err := seg.Close(); err != nil {
			m.logger.Printf("campaign %s: segment close failed: %v", c.ID, err)
		}
	}
	// Final rewrite: the same records, atomically replacing the
	// unordered incremental segments with the experiment-ordered
	// canonical file. A chaos kill skips this, exactly like a real
	// SIGKILL would.
	if path != "" && len(recs) > 0 && !m.killed.Load() {
		if err := goofi.SaveRecords(path, recs); err != nil {
			path = ""
			if runErr == nil {
				runErr = err
			}
		} else if runErr == nil {
			// The canonical file now holds everything the segments do:
			// drop them, and memoize the result for duplicate specs.
			os.RemoveAll(filepath.Join(m.dataDir, c.ID+".records"))
			c.mu.Lock()
			c.segDir = ""
			c.mu.Unlock()
			m.cachePutFile(c, faults, path)
		}
	} else if len(recs) == 0 {
		path = ""
	}
	if path == "" && runErr == nil && !m.killed.Load() {
		m.cachePut(c, faults, recs)
	}
	m.finalize(c, recs, faults, runErr, path)
}

// runTune executes a tuning job: the full design-space search, with
// candidate-evaluation progress fanned out to subscribers and the
// final per-candidate results persisted like campaign records.
func (m *Manager) runTune(ctx context.Context, c *Campaign) {
	outcome, err := tune.Search(ctx, *c.TuneSpec, func(done, total int) {
		c.mu.Lock()
		c.done, c.total = done, total
		c.broadcastLocked(c.eventLocked("progress"))
		c.mu.Unlock()
	})

	path := ""
	if m.dataDir != "" && outcome != nil && len(outcome.Results) > 0 {
		path = filepath.Join(m.dataDir, c.ID+".jsonl")
		if saveErr := tune.SaveResults(path, outcome.Results); saveErr != nil {
			path = ""
			if err == nil {
				err = saveErr
			}
		}
	}
	c.mu.Lock()
	c.outcome = outcome
	c.mu.Unlock()
	m.finalize(c, nil, goofi.FaultStats{}, err, path)
}

// Outcome returns a tune job's finished search, or nil while the
// search is still running (or for plain campaigns).
func (c *Campaign) Outcome() *tune.Outcome {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.outcome
}

// finalize records the campaign's terminal state, notifies subscribers,
// and journals the transition. A cancellation during graceful shutdown
// lands in StateInterrupted — the journal keeps the job alive for the
// next start — while a user cancellation is final.
func (m *Manager) finalize(c *Campaign, recs []goofi.Record, faults goofi.FaultStats, err error, dataPath string) {
	c.mu.Lock()
	if c.state.Terminal() {
		c.mu.Unlock()
		return
	}
	wasQueued := c.state == StateQueued
	c.records = recs
	c.dataPath = dataPath
	c.faults = faults
	c.finished = time.Now()
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		if m.closing.Load() && !c.userCancel {
			c.state = StateInterrupted
			metrics.CampaignsInterrupted.Add(1)
		} else {
			c.state = StateCancelled
			metrics.CampaignsCancelled.Add(1)
		}
	case err != nil:
		c.state = StateFailed
		c.errMsg = err.Error()
		metrics.CampaignsFailed.Add(1)
	default:
		c.state = StateDone
		metrics.CampaignsDone.Add(1)
	}
	if wasQueued {
		metrics.CampaignsQueued.Add(-1)
	}
	c.broadcastLocked(c.eventLocked(string(c.state)))
	close(c.doneCh)
	c.mu.Unlock()

	metrics.ExperimentsRetried.Add(int64(faults.Retried))
	metrics.ExperimentsPanicked.Add(int64(faults.Panicked))
	metrics.ExperimentsAbandoned.Add(int64(faults.Abandoned))
	m.releaseUsage(c)
	m.journalTerminal(c)
}
