package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"ctrlguard/internal/goofi"
	"ctrlguard/internal/trace"
)

// traceResponse mirrors the JSON envelope of the trace endpoint.
type traceResponse struct {
	Record goofi.Record `json:"record"`
	Trace  trace.Trace  `json:"trace"`
	Chain  trace.Chain  `json:"chain"`
}

func TestTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	v := submit(t, ts, `{"alg": 1, "n": 4, "seed": 2001}`)
	waitForTerminal(t, ts, v.ID, 30*time.Second)

	base := ts.URL + "/api/v1/campaigns/" + v.ID + "/experiments/2/trace"

	var tr traceResponse
	if code := getJSON(t, base, &tr); code != http.StatusOK {
		t.Fatalf("trace returned %d", code)
	}
	if tr.Record.ID != 2 {
		t.Errorf("record ID = %d, want 2", tr.Record.ID)
	}
	h := tr.Trace.Header
	if h.Experiment != 2 || h.Seed != 2001 {
		t.Errorf("trace header experiment/seed = %d/%d, want 2/2001", h.Experiment, h.Seed)
	}
	if h.Outcome != tr.Record.Outcome {
		t.Errorf("trace outcome %q != record outcome %q", h.Outcome, tr.Record.Outcome)
	}
	if len(tr.Chain.Links) == 0 || tr.Chain.Links[0].Kind != "injected" {
		t.Errorf("chain does not start at the injection: %+v", tr.Chain.Links)
	}

	// The binary format must decode to the same experiment.
	resp, err := http.Get(base + "?format=bin")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("bin Content-Type = %q", ct)
	}
	decoded, err := trace.Decode(raw)
	if err != nil {
		t.Fatalf("decode served trace: %v", err)
	}
	if decoded.Header != h {
		t.Errorf("binary trace header differs from JSON: %+v vs %+v", decoded.Header, h)
	}

	resp, err = http.Get(base + "?format=svg")
	if err != nil {
		t.Fatal(err)
	}
	svg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(svg), "<svg") {
		t.Errorf("svg format did not render SVG: %.80s", svg)
	}

	resp, err = http.Get(base + "?format=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown format returned %d, want 400", resp.StatusCode)
	}
}

func TestTraceLookupFailures(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	// Unknown campaign.
	if code := getJSON(t, ts.URL+"/api/v1/campaigns/c999999/experiments/0/trace", nil); code != http.StatusNotFound {
		t.Errorf("unknown campaign: %d, want 404", code)
	}

	v := submit(t, ts, `{"alg": 1, "n": 3, "seed": 9}`)
	waitForTerminal(t, ts, v.ID, 30*time.Second)
	base := ts.URL + "/api/v1/campaigns/" + v.ID + "/experiments/"

	// Out-of-range and malformed experiment indexes.
	for _, n := range []string{"7", "-1", "two"} {
		if code := getJSON(t, base+n+"/trace", nil); code != http.StatusNotFound {
			t.Errorf("experiment %q: %d, want 404", n, code)
		}
	}
}

func TestTraceSequentialCampaignConflict(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	// A precision-driven campaign re-seeds per batch, so its
	// experiments cannot be replayed by (seed, index); queued or not,
	// the endpoint must refuse rather than serve a wrong replay.
	v := submit(t, ts, `{"alg": 1, "seed": 3, "precision": 0.4, "maxExperiments": 100}`)
	code := getJSON(t, ts.URL+"/api/v1/campaigns/"+v.ID+"/experiments/0/trace", nil)
	if code != http.StatusConflict {
		t.Errorf("sequential campaign trace: %d, want 409", code)
	}
}

// TestTraceClientCancelMidTrace drops the connection while the replay
// is running; the handler must notice the dead context and bail out
// without wedging the server.
func TestTraceClientCancelMidTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	v := submit(t, ts, `{"alg": 1, "n": 2, "seed": 2001}`)
	waitForTerminal(t, ts, v.ID, 30*time.Second)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		ts.URL+"/api/v1/campaigns/"+v.ID+"/experiments/0/trace", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		// The trace finished inside the grace window — fine, but then
		// it must have succeeded.
		if resp.StatusCode != http.StatusOK {
			t.Errorf("fast trace returned %d", resp.StatusCode)
		}
	}

	// The server must still answer afterwards.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("server unresponsive after cancelled trace: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz after cancelled trace: %d", resp.StatusCode)
	}
	var view View
	if code := getJSON(t, ts.URL+"/api/v1/campaigns/"+v.ID, &view); code != http.StatusOK || view.State != StateDone {
		t.Errorf("campaign state after cancelled trace: %d %s", code, view.State)
	}
}

func TestTraceOnTuneJobConflict(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	spec := `{
		"space": {"policies": ["none", "rollback"], "learned": [false], "slacks": [0], "rateLimits": [0]},
		"seed": 17, "initialExperiments": 40, "rounds": 1
	}`
	resp, err := http.Post(ts.URL+"/api/v1/tune", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("tune submit returned %d: %s", resp.StatusCode, body)
	}
	var view View
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	code := getJSON(t, ts.URL+"/api/v1/campaigns/"+view.ID+"/experiments/0/trace", nil)
	if code != http.StatusConflict {
		t.Errorf("trace on tune job: %d, want 409", code)
	}
}
