// Package server implements ctrlguardd, the fault-injection campaign
// service. It plays the role GOOFI's interactive tool played in the
// paper — campaigns are queued, executed experiment-by-experiment, and
// every record is persisted for later analysis — behind a small JSON
// HTTP API:
//
//	POST   /api/v1/campaigns             submit a campaign spec
//	GET    /api/v1/campaigns             list campaigns
//	GET    /api/v1/campaigns/{id}        one campaign's state
//	DELETE /api/v1/campaigns/{id}        cancel a campaign
//	GET    /api/v1/campaigns/{id}/events live progress (NDJSON or SSE)
//	GET    /api/v1/campaigns/{id}/report query the stored records
//	GET    /api/v1/campaigns/{id}/records
//	                                     page through raw records
//	                                     (?offset=&limit=)
//	GET    /api/v1/campaigns/{id}/experiments/{n}/trace
//	                                     replay experiment n in detail
//	                                     mode and serve its propagation
//	                                     trace (json, bin, svg, text)
//	POST   /api/v1/tune                  submit a design-space tuning job
//	GET    /api/v1/tune/{id}/result      a finished tune job's outcome
//	GET    /api/v1/variants              available workload variants
//	POST   /api/v1/executors             remote executor registration
//	                                     and heartbeat (same upsert)
//	GET    /api/v1/executors             live remote executors
//	DELETE /api/v1/executors/{name}      deregister an executor
//	GET    /metrics                      expvar campaign metrics
//	GET    /healthz                      liveness probe
//	GET    /readyz                       readiness probe (503 while
//	                                     draining) with queue depth and
//	                                     per-tenant usage
//
// With Tenants configured, submissions authenticate via the
// Authorization header and pass per-tenant admission control: token
// buckets (429 + Retry-After), quotas on outstanding work (429), and
// the bounded weighted fair-share queue (503 + Retry-After). With a
// CacheDir, completed deterministic campaigns are memoized by content
// address and duplicate submissions are served without re-running.
package server

import (
	"context"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"ctrlguard/internal/goofi"
	"ctrlguard/internal/tenant"
)

// Config configures a Server.
type Config struct {
	// Addr is the listen address for ListenAndServe (default :8077).
	Addr string

	// Workers is the number of campaigns executed concurrently
	// (default 1 — individual campaigns already parallelise their
	// experiments across cores).
	Workers int

	// QueueDepth bounds the number of campaigns waiting to run
	// (default 16); submissions beyond it are rejected with 503.
	QueueDepth int

	// DataDir, if set, receives each campaign's records as
	// <id>.jsonl through the goofi JSONL store — appended live while
	// the campaign runs, rewritten atomically when it finishes.
	DataDir string

	// JournalDir, if set, holds journal.wal — the fsync'd write-ahead
	// journal of job lifecycle events. A journal-backed server replays
	// it on start and resumes every campaign a crash or shutdown
	// interrupted.
	JournalDir string

	// NoResume keeps journal replay (finished jobs stay listed) but
	// leaves interrupted campaigns parked instead of re-running them.
	NoResume bool

	// Logger receives request and lifecycle logs (default
	// log.Default).
	Logger *log.Logger

	// ConfigHook is applied to every campaign's resolved goofi.Config
	// just before it runs. TEST-ONLY: the chaos harness injects worker
	// panics and hangs through it; leave nil in production.
	ConfigHook func(*goofi.Config)

	// Executors, when positive, runs eligible campaigns through the
	// distributed coordinator with this many local ctrlexec
	// subprocesses (plus any remote executors that register
	// themselves). Requires ExecBin.
	Executors int

	// ExecBin is the ctrlexec binary local executor slots spawn.
	ExecBin string

	// ShardSize is the experiments-per-shard for distributed campaigns
	// (default dist.DefaultShardSize).
	ShardSize int

	// LeaseTTL overrides the shard lease TTL for distributed campaigns
	// (default dist.DefaultLeaseTTL).
	LeaseTTL time.Duration

	// ExecTTL overrides how long a remote executor registration stays
	// live without a heartbeat (default 15s). The server hands the
	// value to executors in the registration response so both sides
	// agree on the heartbeat cadence.
	ExecTTL time.Duration

	// Tenants configures multi-tenant admission: API keys, rate
	// limits, quotas, and fair-share weights. Empty runs the server
	// open — every request is the default tenant, unlimited.
	Tenants []tenant.Tenant

	// CacheDir, if set, enables content-addressed campaign
	// memoization: duplicate submissions of a completed deterministic
	// spec are served the original run's bytes without re-running.
	CacheDir string

	// CacheMaxBytes bounds the memoization cache (0 = unbounded).
	CacheMaxBytes int64

	// SegmentBytes caps each incremental record segment (default
	// goofi.DefaultSegmentBytes).
	SegmentBytes int64

	// JournalMaxBytes triggers automatic journal compaction once the
	// write-ahead journal grows past it (0 = startup-only compaction).
	JournalMaxBytes int64

	// RetainAge, if positive, lets the retention sweep delete the
	// record files of terminal campaigns finished longer ago than this.
	RetainAge time.Duration

	// RetainBytes, if positive, bounds the total record bytes of
	// terminal campaigns; oldest-finished files are deleted first.
	RetainBytes int64
}

// Server is the ctrlguardd HTTP service.
type Server struct {
	cfg Config
	mgr *Manager
	mux *http.ServeMux
	log *log.Logger
}

// New builds a Server and starts its campaign worker pool. With a
// JournalDir, the prior process's journal is replayed first and
// interrupted campaigns are re-enqueued to resume.
func New(cfg Config) (*Server, error) {
	if cfg.Addr == "" {
		cfg.Addr = ":8077"
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.Logger == nil {
		cfg.Logger = log.Default()
	}
	journalPath := ""
	if cfg.JournalDir != "" {
		if err := os.MkdirAll(cfg.JournalDir, 0o755); err != nil {
			return nil, err
		}
		journalPath = filepath.Join(cfg.JournalDir, "journal.wal")
	}
	mgr, err := NewManager(Options{
		Workers:         cfg.Workers,
		QueueDepth:      cfg.QueueDepth,
		DataDir:         cfg.DataDir,
		JournalPath:     journalPath,
		NoResume:        cfg.NoResume,
		Logger:          cfg.Logger,
		ConfigHook:      cfg.ConfigHook,
		Executors:       cfg.Executors,
		ExecBin:         cfg.ExecBin,
		ShardSize:       cfg.ShardSize,
		LeaseTTL:        cfg.LeaseTTL,
		ExecTTL:         cfg.ExecTTL,
		Tenants:         cfg.Tenants,
		CacheDir:        cfg.CacheDir,
		CacheMaxBytes:   cfg.CacheMaxBytes,
		SegmentBytes:    cfg.SegmentBytes,
		JournalMaxBytes: cfg.JournalMaxBytes,
		RetainAge:       cfg.RetainAge,
		RetainBytes:     cfg.RetainBytes,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg: cfg,
		mgr: mgr,
		mux: http.NewServeMux(),
		log: cfg.Logger,
	}
	s.routes()
	return s, nil
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /api/v1/campaigns", s.handleSubmit)
	s.mux.HandleFunc("GET /api/v1/campaigns", s.handleList)
	s.mux.HandleFunc("GET /api/v1/campaigns/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /api/v1/campaigns/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /api/v1/campaigns/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /api/v1/campaigns/{id}/report", s.handleReport)
	s.mux.HandleFunc("GET /api/v1/campaigns/{id}/records", s.handleRecords)
	s.mux.HandleFunc("GET /api/v1/campaigns/{id}/experiments/{n}/trace", s.handleTrace)
	s.mux.HandleFunc("POST /api/v1/tune", s.handleSubmitTune)
	s.mux.HandleFunc("GET /api/v1/tune/{id}/result", s.handleTuneResult)
	s.mux.HandleFunc("GET /api/v1/variants", s.handleVariants)
	s.mux.HandleFunc("POST /api/v1/executors", s.handleExecRegister)
	s.mux.HandleFunc("GET /api/v1/executors", s.handleExecList)
	s.mux.HandleFunc("DELETE /api/v1/executors/{name}", s.handleExecDelete)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	})
	s.mux.HandleFunc("GET /readyz", s.handleReady)
}

// handleReady is the readiness probe: 200 while the server accepts
// work, 503 once a graceful drain begins (so load balancers stop
// routing submissions to a stopping instance). The body carries the
// queue and per-tenant usage snapshot either way.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	body := map[string]any{
		"queued":     s.mgr.QueueLen(),
		"queueDepth": s.mgr.QueueDepth(),
		"usage":      s.mgr.UsageSnapshot(),
	}
	if s.mgr.Draining() {
		body["status"] = "draining"
		s.writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	body["status"] = "ok"
	s.writeJSON(w, http.StatusOK, body)
}

// Handler returns the service's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the worker pool gracefully: running and queued campaigns
// are journaled as interrupted so a journal-backed restart resumes
// them from their persisted records.
func (s *Server) Close() { s.mgr.Close() }

// ListenAndServe serves until ctx is cancelled, then shuts down
// gracefully: in-flight requests get a drain window while running
// campaigns stop at their next experiment boundary and are journaled
// as interrupted for the next start to resume.
func (s *Server) ListenAndServe(ctx context.Context) error {
	srv := &http.Server{Addr: s.cfg.Addr, Handler: s.mux}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	s.log.Printf("ctrlguardd listening on %s (%d campaign workers, queue depth %d)",
		s.cfg.Addr, s.cfg.Workers, s.cfg.QueueDepth)
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	s.log.Printf("ctrlguardd shutting down")
	s.mgr.Close()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return srv.Shutdown(shutCtx)
}
