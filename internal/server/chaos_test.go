package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ctrlguard/internal/goofi"
)

// The chaos suite turns the paper's discipline on the harness itself:
// kill the campaign engine mid-run, sever its record file mid-write,
// crash its workers mid-experiment — and demand the same answer an
// undisturbed run produces. These tests exercise the full server stack
// (HTTP submit, journal write-through, incremental persistence,
// restart recovery) and are also run under -race in CI.

const chaosSpec = `{"variant":"alg1","n":150,"seed":77,"workers":2}`

// slowHook stretches every experiment by a few milliseconds so a test
// can reliably interrupt a campaign mid-flight. The delay rides the
// goofi chaos hook but injects no faults, so records are unchanged.
func slowHook(d time.Duration) func(*goofi.Config) {
	return func(cfg *goofi.Config) {
		cfg.Chaos = func(id, attempt int) { time.Sleep(d) }
	}
}

// waitForProgress polls until the campaign has completed at least min
// experiments (and is still running), so a kill lands mid-campaign.
func waitForProgress(t *testing.T, ts *httptest.Server, id string, min int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		var v View
		getJSON(t, ts.URL+"/api/v1/campaigns/"+id, &v)
		if v.State.Terminal() {
			t.Fatalf("campaign %s finished (%s) before it could be interrupted", id, v.State)
		}
		if v.Done >= min {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("campaign %s never reached %d done", id, min)
}

// metricsMap fetches /metrics and flattens the numeric fields.
func metricsMap(t *testing.T, ts *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for k, v := range raw {
		if f, ok := v.(float64); ok {
			out[k] = f
		}
	}
	return out
}

// cleanRecordFile runs the chaos spec to completion on an undisturbed
// server and returns the bytes of its persisted record file — the
// ground truth every recovery scenario must reproduce exactly.
func cleanRecordFile(t *testing.T) []byte {
	t.Helper()
	dataDir := t.TempDir()
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2, DataDir: dataDir})
	v := submit(t, ts, chaosSpec)
	waitForState(t, ts, v.ID, StateDone, 2*time.Minute)
	b, err := os.ReadFile(filepath.Join(dataDir, v.ID+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestChaosCrashRestartResume is the headline recovery scenario:
// SIGKILL (simulated) lands mid-campaign, the server restarts on the
// same journal and data directory, re-enqueues the interrupted
// campaign, resumes it from the salvaged records, and the final record
// file is byte-identical to an uninterrupted run's.
func TestChaosCrashRestartResume(t *testing.T) {
	want := cleanRecordFile(t)
	dataDir, journalDir := t.TempDir(), t.TempDir()
	before := func() map[string]float64 {
		_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
		return metricsMap(t, ts)
	}()

	s1, ts1 := newTestServer(t, Config{
		Workers: 1, QueueDepth: 2, DataDir: dataDir, JournalDir: journalDir,
		ConfigHook: slowHook(3 * time.Millisecond),
	})
	v := submit(t, ts1, chaosSpec)
	waitForProgress(t, ts1, v.ID, 25)
	s1.mgr.kill() // the process vanishes: no terminal journaling, no final rewrite

	// The incremental segment store survives with a partial prefix
	// (salvage tolerates a torn tail in the newest segment only).
	partial, err := goofi.LoadSegmentRecords(filepath.Join(dataDir, v.ID+".records"))
	if err != nil {
		t.Fatalf("post-crash segment store unreadable: %v", err)
	}
	if len(partial) == 0 || len(partial) >= 150 {
		t.Fatalf("post-crash store has %d records, want a strict partial prefix", len(partial))
	}

	// Restart on the same state. The journal replay must re-enqueue the
	// campaign and resume it to completion.
	_, ts2 := newTestServer(t, Config{
		Workers: 1, QueueDepth: 2, DataDir: dataDir, JournalDir: journalDir,
	})
	var restored View
	if code := getJSON(t, ts2.URL+"/api/v1/campaigns/"+v.ID, &restored); code != http.StatusOK {
		t.Fatalf("restarted server lost campaign %s (status %d)", v.ID, code)
	}
	if !restored.Resumed {
		t.Errorf("restored campaign not flagged resumed: %+v", restored)
	}
	waitForState(t, ts2, v.ID, StateDone, 2*time.Minute)

	var final View
	getJSON(t, ts2.URL+"/api/v1/campaigns/"+v.ID, &final)
	if final.Done != 150 || final.Records != 150 {
		t.Errorf("resumed campaign finished %d done / %d records, want 150", final.Done, final.Records)
	}
	if final.Faults.Resumed == 0 {
		t.Errorf("resumed campaign reports zero reused experiments: %+v", final.Faults)
	}
	got, err := os.ReadFile(filepath.Join(dataDir, v.ID+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("final record file differs from an uninterrupted run (%d vs %d bytes)", len(got), len(want))
	}
	if _, err := os.Stat(filepath.Join(dataDir, v.ID+".records")); !os.IsNotExist(err) {
		t.Errorf("incremental segment store not cleaned up after completion")
	}

	after := metricsMap(t, ts2)
	if after["campaigns_resumed"] <= before["campaigns_resumed"] {
		t.Errorf("campaigns_resumed did not advance: %v -> %v",
			before["campaigns_resumed"], after["campaigns_resumed"])
	}
	if after["experiments_resumed"] <= before["experiments_resumed"] {
		t.Errorf("experiments_resumed did not advance: %v -> %v",
			before["experiments_resumed"], after["experiments_resumed"])
	}
}

// TestChaosGracefulShutdownInterrupts is the SIGTERM path: a graceful
// Close marks the running campaign interrupted (not failed, not
// cancelled) so the journal keeps it alive, and a restart finishes it.
func TestChaosGracefulShutdownInterrupts(t *testing.T) {
	want := cleanRecordFile(t)
	dataDir, journalDir := t.TempDir(), t.TempDir()

	s1, ts1 := newTestServer(t, Config{
		Workers: 1, QueueDepth: 2, DataDir: dataDir, JournalDir: journalDir,
		ConfigHook: slowHook(3 * time.Millisecond),
	})
	v := submit(t, ts1, chaosSpec)
	waitForProgress(t, ts1, v.ID, 10)
	s1.Close() // graceful: campaign journaled as interrupted

	c, err := s1.mgr.Get(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Snapshot().State; st != StateInterrupted {
		t.Fatalf("after graceful shutdown campaign is %s, want %s", st, StateInterrupted)
	}

	_, ts2 := newTestServer(t, Config{
		Workers: 1, QueueDepth: 2, DataDir: dataDir, JournalDir: journalDir,
	})
	waitForState(t, ts2, v.ID, StateDone, 2*time.Minute)
	got, err := os.ReadFile(filepath.Join(dataDir, v.ID+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("record file after interrupt+resume differs from clean run (%d vs %d bytes)", len(got), len(want))
	}
}

// TestChaosNoResumeParksInterrupted: with NoResume, a restart replays
// the journal (the job stays visible) but parks the interrupted
// campaign instead of re-running it.
func TestChaosNoResumeParksInterrupted(t *testing.T) {
	dataDir, journalDir := t.TempDir(), t.TempDir()
	s1, ts1 := newTestServer(t, Config{
		Workers: 1, QueueDepth: 2, DataDir: dataDir, JournalDir: journalDir,
		ConfigHook: slowHook(3 * time.Millisecond),
	})
	v := submit(t, ts1, chaosSpec)
	waitForProgress(t, ts1, v.ID, 10)
	s1.mgr.kill()

	_, ts2 := newTestServer(t, Config{
		Workers: 1, QueueDepth: 2, DataDir: dataDir, JournalDir: journalDir, NoResume: true,
	})
	var parked View
	if code := getJSON(t, ts2.URL+"/api/v1/campaigns/"+v.ID, &parked); code != http.StatusOK {
		t.Fatalf("no-resume server lost campaign %s (status %d)", v.ID, code)
	}
	if parked.State != StateInterrupted {
		t.Errorf("no-resume restart left campaign %s, want %s", parked.State, StateInterrupted)
	}
}

// TestChaosResumeDropsTornTail drives the TruncatedError path through
// the whole server: the crash leaves half a JSON line at the end of the
// record file, and recovery must drop exactly that torn tail, re-run
// the lost experiment, and still converge to the clean result.
func TestChaosResumeDropsTornTail(t *testing.T) {
	want := cleanRecordFile(t)
	dataDir, journalDir := t.TempDir(), t.TempDir()

	s1, ts1 := newTestServer(t, Config{
		Workers: 1, QueueDepth: 2, DataDir: dataDir, JournalDir: journalDir,
		ConfigHook: slowHook(3 * time.Millisecond),
	})
	v := submit(t, ts1, chaosSpec)
	waitForProgress(t, ts1, v.ID, 25)
	s1.mgr.kill()

	// The crash tore the final record in half — in the live tail
	// segment, the only file the seal ordering permits to be torn.
	segs, err := goofi.SegmentFiles(filepath.Join(dataDir, v.ID+".records"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("post-crash segment store missing: %v (%d segments)", err, len(segs))
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(f, `{"id":9999,"variant":"alg1","reg`)
	f.Close()
	path := filepath.Join(dataDir, v.ID+".jsonl")

	_, ts2 := newTestServer(t, Config{
		Workers: 1, QueueDepth: 2, DataDir: dataDir, JournalDir: journalDir,
	})
	waitForState(t, ts2, v.ID, StateDone, 2*time.Minute)
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("record file after torn-tail recovery differs from clean run (%d vs %d bytes)", len(got), len(want))
	}
	recs, err := goofi.LoadRecords(path)
	if err != nil {
		t.Fatalf("final record file not well-formed: %v", err)
	}
	if len(recs) != 150 {
		t.Fatalf("%d records after recovery, want 150", len(recs))
	}
}

// TestChaosGracefulDrainUnderLoad drains a loaded server: one campaign
// running and three queued when SIGTERM (Close) lands. The drain must
// interrupt all four — including the queued ones, which have done no
// work — never cancel or fail any of them, shed submissions that race
// the drain with 503, and a restart on the same journal must finish
// every one with the running campaign's records byte-identical to an
// undisturbed run's.
func TestChaosGracefulDrainUnderLoad(t *testing.T) {
	want := cleanRecordFile(t)
	dataDir, journalDir := t.TempDir(), t.TempDir()

	s1, ts1 := newTestServer(t, Config{
		Workers: 1, QueueDepth: 8, DataDir: dataDir, JournalDir: journalDir,
		ConfigHook: slowHook(3 * time.Millisecond),
	})
	ids := []string{submit(t, ts1, chaosSpec).ID}
	waitForProgress(t, ts1, ids[0], 10)
	for seed := 1; seed <= 3; seed++ { // pile up behind the single worker
		ids = append(ids, submit(t, ts1, fmt.Sprintf(`{"variant":"alg1","n":30,"seed":%d}`, seed)).ID)
	}
	s1.Close()

	for _, id := range ids {
		c, err := s1.mgr.Get(id)
		if err != nil {
			t.Fatalf("drained server lost campaign %s: %v", id, err)
		}
		if st := c.Snapshot().State; st != StateInterrupted {
			t.Errorf("after drain campaign %s is %s, want %s", id, st, StateInterrupted)
		}
	}

	// A submission racing the drain is shed, not stranded in a queue
	// nobody will ever pop.
	resp, err := http.Post(ts1.URL+"/api/v1/campaigns", "application/json",
		strings.NewReader(`{"variant":"alg1","n":10,"seed":99}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit during drain returned %d, want %d", resp.StatusCode, http.StatusServiceUnavailable)
	}

	// Restart resumes the whole backlog, running and queued alike.
	_, ts2 := newTestServer(t, Config{
		Workers: 1, QueueDepth: 8, DataDir: dataDir, JournalDir: journalDir,
	})
	for _, id := range ids {
		waitForState(t, ts2, id, StateDone, 2*time.Minute)
	}
	got, err := os.ReadFile(filepath.Join(dataDir, ids[0]+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("record file after drain+resume differs from clean run (%d vs %d bytes)", len(got), len(want))
	}
}

// TestChaosWorkerFaultMetrics proves worker isolation end-to-end: every
// experiment's first attempt panics and one experiment panics forever,
// yet the campaign still finishes Done (never Failed), the abandoned
// experiment is a distinct outcome, and the retry/panic/abandon
// counters surface both on the campaign view and on /metrics.
func TestChaosWorkerFaultMetrics(t *testing.T) {
	const n, victim = 40, 13
	_, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 2,
		ConfigHook: func(cfg *goofi.Config) {
			cfg.RetryBackoff = time.Millisecond
			// The assertions below count exact per-experiment panics and
			// retries; pruning would skip some experiments entirely.
			cfg.DisablePrune = true
			cfg.Chaos = func(id, attempt int) {
				if id == victim || attempt == 0 {
					panic("chaos: worker crash")
				}
			}
		},
	})
	before := metricsMap(t, ts)

	v := submit(t, ts, fmt.Sprintf(`{"variant":"alg1","n":%d,"seed":9,"workers":2}`, n))
	waitForTerminal(t, ts, v.ID, 2*time.Minute)

	var final View
	getJSON(t, ts.URL+"/api/v1/campaigns/"+v.ID, &final)
	if final.State != StateDone {
		t.Fatalf("campaign under worker chaos ended %s (%s), want %s", final.State, final.Error, StateDone)
	}
	// Everyone retries once; the victim burns its full retry budget.
	wantRetried := (n - 1) + goofi.DefaultExperimentRetries
	wantPanicked := (n - 1) + goofi.DefaultExperimentRetries + 1
	if final.Faults.Retried != wantRetried || final.Faults.Panicked != wantPanicked || final.Faults.Abandoned != 1 {
		t.Errorf("faults = %+v, want %d retried, %d panicked, 1 abandoned",
			final.Faults, wantRetried, wantPanicked)
	}
	if final.Outcomes[goofi.OutcomeAbandoned] != 1 {
		t.Errorf("outcomes = %v, want exactly 1 %q", final.Outcomes, goofi.OutcomeAbandoned)
	}
	if final.Done != n {
		t.Errorf("done = %d, want %d", final.Done, n)
	}

	after := metricsMap(t, ts)
	for metric, delta := range map[string]float64{
		"experiments_retried":   float64(wantRetried),
		"experiments_panicked":  float64(wantPanicked),
		"experiments_abandoned": 1,
	} {
		if got := after[metric] - before[metric]; got < delta {
			t.Errorf("%s advanced by %v, want at least %v", metric, got, delta)
		}
	}
}
