package server

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ctrlguard/internal/dist"
	"ctrlguard/internal/goofi"
	"ctrlguard/internal/journal"
)

// ctrlexec is built once per test binary; distributed-campaign tests
// spawn it as their executor subprocess.
var (
	execBinOnce sync.Once
	execBinPath string
	execBinErr  error
)

func quietLogger() *log.Logger { return log.New(io.Discard, "", 0) }

func ctrlexecBin(t *testing.T) string {
	t.Helper()
	execBinOnce.Do(func() {
		dir, err := os.MkdirTemp("", "ctrlexec-server-test-")
		if err != nil {
			execBinErr = err
			return
		}
		execBinPath = filepath.Join(dir, "ctrlexec")
		out, err := exec.Command("go", "build", "-o", execBinPath, "ctrlguard/cmd/ctrlexec").CombinedOutput()
		if err != nil {
			execBinErr = fmt.Errorf("build ctrlexec: %v\n%s", err, out)
		}
	})
	if execBinErr != nil {
		t.Fatal(execBinErr)
	}
	return execBinPath
}

// soloRecordFile renders the record-file bytes a single-process run of
// spec produces — the bytes the distributed path must match exactly.
func soloRecordFile(t *testing.T, spec goofi.CampaignSpec) []byte {
	t.Helper()
	cfg, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	res, err := goofi.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := goofi.WriteRecords(&buf, res.Records); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func waitCampaignDone(t *testing.T, c *Campaign, timeout time.Duration) {
	t.Helper()
	select {
	case <-c.Done():
	case <-time.After(timeout):
		t.Fatalf("campaign %s did not finish within %v (state %s, %d/%d)",
			c.ID, timeout, c.Snapshot().State, c.Snapshot().Done, c.Snapshot().Total)
	}
	if st := c.Snapshot(); st.State != StateDone {
		t.Fatalf("campaign %s finished %s (%s), want done", c.ID, st.State, st.Error)
	}
}

// TestDistCampaignEndToEnd: a campaign sharded across two local
// ctrlexec subprocesses through the full server (HTTP submit, worker
// pool, coordinator, record persistence) must write the byte-identical
// record file a single-process server writes.
func TestDistCampaignEndToEnd(t *testing.T) {
	spec := goofi.CampaignSpec{Variant: "alg1", Experiments: 60, Seed: 41}
	want := soloRecordFile(t, spec)
	dataDir := t.TempDir()

	_, ts := newTestServer(t, Config{
		DataDir:    dataDir,
		JournalDir: t.TempDir(),
		Executors:  2,
		ExecBin:    ctrlexecBin(t),
		ShardSize:  25,
	})
	v := submit(t, ts, `{"variant":"alg1","n":60,"seed":41}`)
	waitForTerminal(t, ts, v.ID, 60*time.Second)

	var got View
	if code := getJSON(t, ts.URL+"/api/v1/campaigns/"+v.ID, &got); code != http.StatusOK {
		t.Fatalf("GET campaign: %d", code)
	}
	if got.State != StateDone {
		t.Fatalf("state = %s (%s), want done", got.State, got.Error)
	}
	if got.Done != 60 || got.Records != 60 {
		t.Fatalf("done=%d records=%d, want 60/60", got.Done, got.Records)
	}

	onDisk, err := os.ReadFile(filepath.Join(dataDir, v.ID+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, want) {
		t.Fatalf("distributed record file differs from solo run (%d vs %d bytes)", len(onDisk), len(want))
	}
	// The shard segments are working state, cleaned up on success.
	if _, err := os.Stat(filepath.Join(dataDir, v.ID+".shards")); !os.IsNotExist(err) {
		t.Fatalf("segment dir survived a successful campaign (err=%v)", err)
	}
	// Shard metrics moved.
	mm := metricsMap(t, ts)
	if mm["shards_leased"] < 3 || mm["shards_completed"] < 3 {
		t.Fatalf("shard metrics did not move: leased=%v completed=%v", mm["shards_leased"], mm["shards_completed"])
	}
}

// TestDistChaosKillReLease at the server layer: one executor
// self-kills mid-shard (exit 137, indistinguishable from kill -9); the
// campaign must still finish with solo-identical bytes, and the lease
// lifecycle must be journaled.
func TestDistChaosKillReLease(t *testing.T) {
	spec := goofi.CampaignSpec{Variant: "alg2", Experiments: 60, Seed: 43}
	want := soloRecordFile(t, spec)
	dataDir := t.TempDir()
	jnlDir := t.TempDir()

	mgr, err := NewManager(Options{
		Workers:     1,
		QueueDepth:  4,
		DataDir:     dataDir,
		JournalPath: filepath.Join(jnlDir, "journal.wal"),
		Logger:      quietLogger(),
		Executors:   2,
		ExecBin:     ctrlexecBin(t),
		ShardSize:   30,
		DistTaskHook: func(task *dist.ShardTask) {
			if task.Shard == 0 && task.Attempt == 0 {
				task.ChaosKillAfter = 3
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	c, err := mgr.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitCampaignDone(t, c, 60*time.Second)

	onDisk, err := os.ReadFile(filepath.Join(dataDir, c.ID+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, want) {
		t.Fatal("record file differs from solo run after mid-shard executor kill")
	}

	mgr.Close()
	_, entries, err := journal.Open(filepath.Join(jnlDir, "journal.wal"))
	if err != nil {
		t.Fatal(err)
	}
	var expired, completed int
	for _, e := range entries {
		switch e.Type {
		case journal.EventShardExpired:
			expired++
		case journal.EventShardCompleted:
			completed++
		}
	}
	if expired < 1 {
		t.Fatalf("journal has %d shard-expired events, want >= 1", expired)
	}
	if completed != 2 {
		t.Fatalf("journal has %d shard-completed events, want 2", completed)
	}
}

// TestDistCrashRestartResume: the coordinator process "crashes"
// (test-only kill: no terminal journaling, exactly like SIGKILL) while
// one shard is complete and the other is wedged mid-shard. The
// restarted manager must replay the journal, skip the completed shard,
// resume the wedged one from its salvaged segment, and finish with
// solo-identical bytes.
func TestDistCrashRestartResume(t *testing.T) {
	spec := goofi.CampaignSpec{Variant: "alg1", Experiments: 60, Seed: 47}
	want := soloRecordFile(t, spec)
	dataDir := t.TempDir()
	jnlDir := t.TempDir()
	jnlPath := filepath.Join(jnlDir, "journal.wal")

	mgr1, err := NewManager(Options{
		Workers:     1,
		QueueDepth:  4,
		DataDir:     dataDir,
		JournalPath: jnlPath,
		Logger:      quietLogger(),
		Executors:   2,
		ExecBin:     ctrlexecBin(t),
		ShardSize:   30,
		LeaseTTL:    time.Minute, // the wedge must outlive phase one
		DistTaskHook: func(task *dist.ShardTask) {
			if task.Shard == 0 && task.Attempt == 0 {
				task.ChaosHangAfter = 2 // shard 0 stalls after 2 records
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c1, err := mgr1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until shard 1 (30 records) is done and shard 0 has streamed
	// its 2 pre-wedge records, then crash the coordinator.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if v := c1.Snapshot(); v.Done >= 32 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never reached 32 records (at %d)", c1.Snapshot().Done)
		}
		time.Sleep(50 * time.Millisecond)
	}
	mgr1.kill()

	mgr2, err := NewManager(Options{
		Workers:     1,
		QueueDepth:  4,
		DataDir:     dataDir,
		JournalPath: jnlPath,
		Logger:      quietLogger(),
		Executors:   2,
		ExecBin:     ctrlexecBin(t),
		ShardSize:   30,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()

	c2, err := mgr2.Get(c1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !c2.Snapshot().Resumed {
		t.Fatal("campaign not marked resumed after restart")
	}
	if done := c2.shardsDone; !done[1] || done[0] {
		t.Fatalf("replayed shardsDone = %v, want shard 1 only", done)
	}
	waitCampaignDone(t, c2, 60*time.Second)

	onDisk, err := os.ReadFile(filepath.Join(dataDir, c2.ID+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, want) {
		t.Fatal("record file differs from solo run after coordinator crash and resume")
	}
}

// TestRecordsPagination covers GET /campaigns/{id}/records.
func TestRecordsPagination(t *testing.T) {
	_, ts := newTestServer(t, Config{DataDir: t.TempDir()})
	v := submit(t, ts, `{"variant":"alg1","n":25,"seed":53}`)
	waitForTerminal(t, ts, v.ID, 60*time.Second)

	type page struct {
		Campaign string         `json:"campaign"`
		Total    int            `json:"total"`
		Offset   int            `json:"offset"`
		Limit    int            `json:"limit"`
		Count    int            `json:"count"`
		Records  []goofi.Record `json:"records"`
	}
	base := ts.URL + "/api/v1/campaigns/" + v.ID + "/records"

	var p page
	if code := getJSON(t, base+"?limit=10", &p); code != http.StatusOK {
		t.Fatalf("page 1: %d", code)
	}
	if p.Total != 25 || p.Count != 10 || len(p.Records) != 10 || p.Records[0].ID != 0 {
		t.Fatalf("page 1 wrong: total=%d count=%d first=%v", p.Total, p.Count, p.Records[0].ID)
	}
	if code := getJSON(t, base+"?offset=20&limit=10", &p); code != http.StatusOK {
		t.Fatalf("last page: %d", code)
	}
	if p.Count != 5 || p.Records[0].ID != 20 {
		t.Fatalf("last page wrong: count=%d first=%d", p.Count, p.Records[0].ID)
	}
	if code := getJSON(t, base+"?offset=100", &p); code != http.StatusOK || p.Count != 0 {
		t.Fatalf("past-the-end page: code=%d count=%d, want 200 with 0", code, p.Count)
	}
	if code := getJSON(t, base, &p); code != http.StatusOK || p.Count != 25 {
		t.Fatalf("default page: code=%d count=%d, want all 25 under default limit", code, p.Count)
	}
	for _, bad := range []string{"?offset=-1", "?limit=0", "?limit=9999", "?offset=x"} {
		if code := getJSON(t, base+bad, nil); code != http.StatusBadRequest {
			t.Fatalf("GET records%s = %d, want 400", bad, code)
		}
	}
	if code := getJSON(t, ts.URL+"/api/v1/campaigns/nope/records", nil); code != http.StatusNotFound {
		t.Fatalf("unknown campaign: %d, want 404", code)
	}
}

// TestExecutorRegistryAPI covers executor registration, heartbeat
// upsert, listing, expiry, and deregistration.
func TestExecutorRegistryAPI(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/api/v1/executors", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{"name":"w1","url":"http://worker1:9077"}`); code != http.StatusOK {
		t.Fatalf("register: %d", code)
	}
	if code := post(`{"name":"w1","url":"http://worker1:9078"}`); code != http.StatusOK {
		t.Fatalf("heartbeat upsert: %d", code)
	}
	if code := post(`{"name":"","url":""}`); code != http.StatusBadRequest {
		t.Fatalf("empty registration: %d, want 400", code)
	}

	var list struct {
		Executors []execEntry `json:"executors"`
	}
	if code := getJSON(t, ts.URL+"/api/v1/executors", &list); code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	if len(list.Executors) != 1 || list.Executors[0].URL != "http://worker1:9078" {
		t.Fatalf("list = %+v, want the upserted w1", list.Executors)
	}

	// Expiry: age the registration past the TTL and it vanishes.
	s.mgr.registry.mu.Lock()
	e := s.mgr.registry.m["w1"]
	e.Seen = e.Seen.Add(-2 * execTTL)
	s.mgr.registry.m["w1"] = e
	s.mgr.registry.mu.Unlock()
	if code := getJSON(t, ts.URL+"/api/v1/executors", &list); code != http.StatusOK || len(list.Executors) != 0 {
		t.Fatalf("expired executor still listed: %+v", list.Executors)
	}

	post(`{"name":"w2","url":"http://worker2:9077"}`)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/executors/w2", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d, want 204", resp.StatusCode)
	}
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete: %d, want 404", resp.StatusCode)
	}
}
