package server

import (
	"expvar"
	"sync"
	"time"
)

// Process-wide campaign metrics, published once under the "ctrlguardd"
// expvar map (expvar registration panics on duplicates, and several
// servers may exist in one process under test). Queued/Running/Busy
// are gauges; the rest are monotonic counters.
var metrics struct {
	CampaignsQueued      expvar.Int
	CampaignsRunning     expvar.Int
	CampaignsDone        expvar.Int
	CampaignsFailed      expvar.Int
	CampaignsCancelled   expvar.Int
	CampaignsInterrupted expvar.Int
	CampaignsResumed     expvar.Int
	ExperimentsTotal     expvar.Int
	ExperimentsRetried   expvar.Int
	ExperimentsPanicked  expvar.Int
	ExperimentsAbandoned expvar.Int
	ExperimentsResumed   expvar.Int

	// Fault-space pruning work avoidance, accumulated over completed
	// campaigns (see goofi.PruneStats).
	ExperimentsPlanned    expvar.Int
	ExperimentsSimulated  expvar.Int
	ExperimentsPrunedDead expvar.Int
	ExperimentsCollapsed  expvar.Int
	BusyWorkers           expvar.Int
	TotalWorkers          expvar.Int

	// Distributed-campaign scheduling: shard lease lifecycle counts and
	// remote-executor registrations (each heartbeat re-POST counts).
	ShardsLeased        expvar.Int
	ShardsCompleted     expvar.Int
	ShardsExpired       expvar.Int
	ExecutorsRegistered expvar.Int

	// Overload admission: submissions bounced by a tenant's token
	// bucket, by a tenant quota, or shed by the bounded fair queue.
	RequestsThrottled     expvar.Int
	RequestsQuotaRejected expvar.Int
	RequestsShed          expvar.Int

	// Content-addressed memoization: duplicate campaigns served from
	// the cache versus submissions that had to run.
	CacheHits   expvar.Int
	CacheMisses expvar.Int

	// Housekeeping: automatic journal compactions and record files
	// removed by the retention sweep.
	JournalCompactions expvar.Int
	RetentionDeleted   expvar.Int
	RetentionBytes     expvar.Int

	// Detector verdicts, accumulated over completed campaigns with
	// in-loop detectors armed (see goofi.DetectStats): experiments
	// caught by signature monitoring / the behavior automaton, and
	// golden iterations the armed detectors rejected (detector noise).
	DetectorCFEDetected       expvar.Int
	DetectorAutomatonDetected expvar.Int
	DetectorFalsePositives    expvar.Int

	start time.Time
	once  sync.Once
	page  *expvar.Map
}

// metricsInit publishes the metric set (first call only) and records
// the worker-pool size for the utilization gauge.
func metricsInit(workers int) {
	metrics.once.Do(func() {
		metrics.start = time.Now()
		m := new(expvar.Map).Init()
		m.Set("campaigns_queued", &metrics.CampaignsQueued)
		m.Set("campaigns_running", &metrics.CampaignsRunning)
		m.Set("campaigns_done", &metrics.CampaignsDone)
		m.Set("campaigns_failed", &metrics.CampaignsFailed)
		m.Set("campaigns_cancelled", &metrics.CampaignsCancelled)
		m.Set("campaigns_interrupted", &metrics.CampaignsInterrupted)
		m.Set("campaigns_resumed", &metrics.CampaignsResumed)
		m.Set("experiments_total", &metrics.ExperimentsTotal)
		m.Set("experiments_retried", &metrics.ExperimentsRetried)
		m.Set("experiments_panicked", &metrics.ExperimentsPanicked)
		m.Set("experiments_abandoned", &metrics.ExperimentsAbandoned)
		m.Set("experiments_resumed", &metrics.ExperimentsResumed)
		m.Set("experiments_planned", &metrics.ExperimentsPlanned)
		m.Set("experiments_simulated", &metrics.ExperimentsSimulated)
		m.Set("experiments_pruned_dead", &metrics.ExperimentsPrunedDead)
		m.Set("experiments_collapsed", &metrics.ExperimentsCollapsed)
		m.Set("shards_leased", &metrics.ShardsLeased)
		m.Set("shards_completed", &metrics.ShardsCompleted)
		m.Set("shards_expired", &metrics.ShardsExpired)
		m.Set("executors_registered", &metrics.ExecutorsRegistered)
		m.Set("requests_throttled", &metrics.RequestsThrottled)
		m.Set("requests_quota_rejected", &metrics.RequestsQuotaRejected)
		m.Set("requests_shed", &metrics.RequestsShed)
		m.Set("cache_hits", &metrics.CacheHits)
		m.Set("cache_misses", &metrics.CacheMisses)
		m.Set("journal_compactions", &metrics.JournalCompactions)
		m.Set("retention_deleted", &metrics.RetentionDeleted)
		m.Set("retention_bytes", &metrics.RetentionBytes)
		m.Set("detector_cfe_detected", &metrics.DetectorCFEDetected)
		m.Set("detector_automaton_detected", &metrics.DetectorAutomatonDetected)
		m.Set("detector_false_positives", &metrics.DetectorFalsePositives)
		m.Set("campaign_workers", &metrics.TotalWorkers)
		m.Set("campaign_workers_busy", &metrics.BusyWorkers)
		m.Set("experiments_per_sec", expvar.Func(func() any {
			secs := time.Since(metrics.start).Seconds()
			if secs <= 0 {
				return 0.0
			}
			return float64(metrics.ExperimentsTotal.Value()) / secs
		}))
		m.Set("worker_utilization", expvar.Func(func() any {
			total := metrics.TotalWorkers.Value()
			if total <= 0 {
				return 0.0
			}
			return float64(metrics.BusyWorkers.Value()) / float64(total)
		}))
		expvar.Publish("ctrlguardd", m)
		metrics.page = m
	})
	metrics.TotalWorkers.Set(int64(workers))
}
