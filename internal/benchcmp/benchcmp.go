// Package benchcmp parses `go test -bench` output and compares two
// runs, the engine behind cmd/benchgate (the CI benchmark-regression
// gate). It is deliberately dependency-free: CI compares base and PR
// with nothing but the repository itself.
package benchcmp

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Set maps a benchmark name (GOMAXPROCS suffix stripped) to its ns/op
// samples, one per -count repetition.
type Set map[string][]float64

// Parse reads `go test -bench` text output. Lines that are not
// benchmark result lines (headers, PASS, metrics-only noise) are
// ignored; malformed benchmark lines are an error so silent garbage
// cannot pass a gate.
func Parse(r io.Reader) (Set, error) {
	set := make(Set)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iteration count, value, "ns/op", then optional extra
		// metric pairs.
		if len(fields) < 4 {
			return nil, fmt.Errorf("benchcmp: malformed benchmark line %q", line)
		}
		nsIdx := -1
		for i := 3; i < len(fields); i += 2 {
			if fields[i] == "ns/op" {
				nsIdx = i - 1
				break
			}
		}
		if nsIdx < 0 {
			return nil, fmt.Errorf("benchcmp: no ns/op value in line %q", line)
		}
		v, err := strconv.ParseFloat(fields[nsIdx], 64)
		if err != nil {
			return nil, fmt.Errorf("benchcmp: bad ns/op value in line %q: %v", line, err)
		}
		name := stripProcs(fields[0])
		set[name] = append(set[name], v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return set, nil
}

// stripProcs removes the -GOMAXPROCS suffix go test appends to the
// last path segment of a benchmark name (Benchmark/sub-8 → Benchmark/sub).
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 || i < strings.LastIndex(name, "/") {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Median returns the median of the samples; benchmarking noise is
// one-sided (interruptions only slow a run down), so the median is the
// robust location estimate benchstat also uses.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Comparison is one benchmark present in both runs.
type Comparison struct {
	Name  string  `json:"name"`
	Base  float64 `json:"baseNsPerOp"`
	PR    float64 `json:"prNsPerOp"`
	Ratio float64 `json:"ratio"` // PR / base; > 1 means slower
	Gated bool    `json:"gated"`
}

// Compare pairs the two runs by benchmark name (medians over samples)
// and reports every benchmark of the PR run, sorted by name.
// Benchmarks missing from base (newly added) have Base 0 and Ratio 0.
func Compare(base, pr Set, gate *regexp.Regexp) []Comparison {
	names := make([]string, 0, len(pr))
	for name := range pr {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Comparison, 0, len(names))
	for _, name := range names {
		c := Comparison{
			Name:  name,
			PR:    Median(pr[name]),
			Gated: gate != nil && gate.MatchString(name),
		}
		if bs, ok := base[name]; ok {
			c.Base = Median(bs)
			if c.Base > 0 {
				c.Ratio = c.PR / c.Base
			}
		}
		out = append(out, c)
	}
	return out
}

// Regressions filters the gated comparisons whose slowdown exceeds
// maxRegression (0.20 = fail when more than 20 % slower than base).
func Regressions(comparisons []Comparison, maxRegression float64) []Comparison {
	var bad []Comparison
	for _, c := range comparisons {
		if c.Gated && c.Base > 0 && c.Ratio > 1+maxRegression {
			bad = append(bad, c)
		}
	}
	return bad
}

// SpeedupSpec is an asserted ratio between two benchmarks of the same
// run: Median(Slow) / Median(Fast) must be at least Min.
type SpeedupSpec struct {
	Slow string
	Fast string
	Min  float64
}

// ParseSpeedup parses "SlowBench/FastBench=2.0".
func ParseSpeedup(s string) (SpeedupSpec, error) {
	eq := strings.LastIndex(s, "=")
	if eq < 0 {
		return SpeedupSpec{}, fmt.Errorf("benchcmp: speedup spec %q: want Slow/Fast=min", s)
	}
	min, err := strconv.ParseFloat(s[eq+1:], 64)
	if err != nil || min <= 0 {
		return SpeedupSpec{}, fmt.Errorf("benchcmp: speedup spec %q: bad minimum ratio", s)
	}
	pair := strings.SplitN(s[:eq], "/", 2)
	if len(pair) != 2 || pair[0] == "" || pair[1] == "" {
		return SpeedupSpec{}, fmt.Errorf("benchcmp: speedup spec %q: want Slow/Fast=min", s)
	}
	return SpeedupSpec{Slow: pair[0], Fast: pair[1], Min: min}, nil
}

// CheckSpeedup evaluates the spec against one run and returns the
// measured ratio. The error reports a missing benchmark or a ratio
// below the minimum.
func CheckSpeedup(set Set, spec SpeedupSpec) (float64, error) {
	slow, ok := set[spec.Slow]
	if !ok {
		return 0, fmt.Errorf("benchcmp: benchmark %s not found in run", spec.Slow)
	}
	fast, ok := set[spec.Fast]
	if !ok {
		return 0, fmt.Errorf("benchcmp: benchmark %s not found in run", spec.Fast)
	}
	fm := Median(fast)
	if fm <= 0 {
		return 0, fmt.Errorf("benchcmp: benchmark %s has no valid timing", spec.Fast)
	}
	ratio := Median(slow) / fm
	if ratio < spec.Min {
		return ratio, fmt.Errorf("benchcmp: %s is only %.2fx faster than %s, want >= %.2fx",
			spec.Fast, ratio, spec.Slow, spec.Min)
	}
	return ratio, nil
}
