package benchcmp

import (
	"regexp"
	"strings"
	"testing"
)

const sampleRun = `goos: linux
goarch: amd64
pkg: ctrlguard
cpu: some CPU
BenchmarkCampaignWarmStart-8    	       1	 936033987 ns/op	       320.5 experiments/s	        75.00 early_exits	       237.0 checkpoints	       300.0 resumed
BenchmarkCampaignWarmStart-8    	       1	 940000000 ns/op	       319.0 experiments/s
BenchmarkCampaignWarmStart-8    	       1	 930000000 ns/op	       322.0 experiments/s
BenchmarkCampaignFullReplay-8   	       1	2470951688 ns/op	       121.4 experiments/s
BenchmarkCampaignFullReplay-8   	       1	2500000000 ns/op	       120.0 experiments/s
BenchmarkCampaignFullReplay-8   	       1	2450000000 ns/op	       122.0 experiments/s
BenchmarkTraceReplay-8          	       1	 278000000 ns/op
BenchmarkAblationGuardPolicies/rollback-8	       1	 100000 ns/op
PASS
ok  	ctrlguard	12.3s
`

func TestParse(t *testing.T) {
	set, err := Parse(strings.NewReader(sampleRun))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(set["BenchmarkCampaignWarmStart"]); got != 3 {
		t.Fatalf("warm-start samples = %d, want 3", got)
	}
	if got := len(set["BenchmarkCampaignFullReplay"]); got != 3 {
		t.Fatalf("full-replay samples = %d, want 3", got)
	}
	if got := len(set["BenchmarkTraceReplay"]); got != 1 {
		t.Fatalf("trace-replay samples = %d, want 1", got)
	}
	// The -8 procs suffix must come off the last path segment only.
	if _, ok := set["BenchmarkAblationGuardPolicies/rollback"]; !ok {
		t.Fatalf("sub-benchmark name not normalised; have %v", keys(set))
	}
	if m := Median(set["BenchmarkCampaignWarmStart"]); m != 936033987 {
		t.Fatalf("warm-start median = %v, want 936033987", m)
	}
}

func keys(s Set) []string {
	var out []string
	for k := range s {
		out = append(out, k)
	}
	return out
}

func TestParseRejectsMalformedBenchmarkLine(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkBroken-8 1 notanumber ns/op\n")); err == nil {
		t.Fatal("malformed ns/op value accepted")
	}
	if _, err := Parse(strings.NewReader("BenchmarkBroken-8 1\n")); err == nil {
		t.Fatal("truncated benchmark line accepted")
	}
}

func TestStripProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":          "BenchmarkFoo",
		"BenchmarkFoo-16":         "BenchmarkFoo",
		"BenchmarkFoo":            "BenchmarkFoo",
		"BenchmarkFoo/sub-case-8": "BenchmarkFoo/sub-case",
		"BenchmarkFoo/sub-case":   "BenchmarkFoo/sub-case",
		"BenchmarkFoo-bar/sub":    "BenchmarkFoo-bar/sub",
	}
	for in, want := range cases {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %v, want 2", m)
	}
	if m := Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even median = %v, want 2.5", m)
	}
	if m := Median(nil); m != 0 {
		t.Fatalf("empty median = %v, want 0", m)
	}
}

func TestCompareAndRegressions(t *testing.T) {
	base := Set{
		"BenchmarkCampaignWarmStart": {100, 100, 100},
		"BenchmarkTraceReplay":       {50, 50, 50},
		"BenchmarkMicroThing":        {10, 10, 10},
	}
	pr := Set{
		"BenchmarkCampaignWarmStart": {130, 130, 130}, // 30 % slower, gated
		"BenchmarkTraceReplay":       {55, 55, 55},    // 10 % slower, gated, within budget
		"BenchmarkMicroThing":        {40, 40, 40},    // 4x slower but ungated
		"BenchmarkNewOne":            {5},             // missing from base
	}
	gate := regexp.MustCompile(`^BenchmarkCampaign|^BenchmarkTraceReplay`)
	cmp := Compare(base, pr, gate)
	if len(cmp) != 4 {
		t.Fatalf("got %d comparisons, want 4", len(cmp))
	}
	bad := Regressions(cmp, 0.20)
	if len(bad) != 1 || bad[0].Name != "BenchmarkCampaignWarmStart" {
		t.Fatalf("regressions = %+v, want just BenchmarkCampaignWarmStart", bad)
	}
	if bad[0].Ratio != 1.3 {
		t.Fatalf("regression ratio = %v, want 1.3", bad[0].Ratio)
	}
	// Tightening the budget catches the second gated benchmark too.
	if bad := Regressions(cmp, 0.05); len(bad) != 2 {
		t.Fatalf("regressions at 5%% budget = %+v, want 2", bad)
	}
}

func TestSpeedup(t *testing.T) {
	spec, err := ParseSpeedup("BenchmarkCampaignFullReplay/BenchmarkCampaignWarmStart=2.0")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Slow != "BenchmarkCampaignFullReplay" || spec.Fast != "BenchmarkCampaignWarmStart" || spec.Min != 2.0 {
		t.Fatalf("spec = %+v", spec)
	}

	set, err := Parse(strings.NewReader(sampleRun))
	if err != nil {
		t.Fatal(err)
	}
	ratio, err := CheckSpeedup(set, spec)
	if err != nil {
		t.Fatalf("speedup check failed at ratio %.2f: %v", ratio, err)
	}
	if ratio < 2.0 {
		t.Fatalf("ratio = %v, want >= 2", ratio)
	}

	if _, err := CheckSpeedup(set, SpeedupSpec{Slow: "BenchmarkCampaignFullReplay", Fast: "BenchmarkCampaignWarmStart", Min: 100}); err == nil {
		t.Fatal("unattainable speedup accepted")
	}
	if _, err := CheckSpeedup(set, SpeedupSpec{Slow: "BenchmarkMissing", Fast: "BenchmarkCampaignWarmStart", Min: 1}); err == nil {
		t.Fatal("missing benchmark accepted")
	}

	for _, bad := range []string{"", "NoEquals", "A/B=x", "A/B=-1", "OnlyOne=2.0", "/B=2.0", "A/=2.0"} {
		if _, err := ParseSpeedup(bad); err == nil {
			t.Errorf("ParseSpeedup(%q) accepted", bad)
		}
	}
}
