package tenant

import (
	"sync"
	"time"
)

// Bucket is a token bucket: capacity Burst tokens, refilled at Rate
// tokens per second. Each admitted request spends one token; an empty
// bucket rejects with the wait until the next token — the Retry-After
// the HTTP layer hands back with a 429.
type Bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; <= 0 means unlimited
	burst  float64
	tokens float64
	last   time.Time
}

// NewBucket builds a bucket for the given sustained rate and burst
// depth. rate <= 0 builds an unlimited bucket; burst <= 0 defaults to
// max(1, ceil(rate)). The bucket starts full.
func NewBucket(rate float64, burst int) *Bucket {
	b := &Bucket{rate: rate, burst: float64(burst)}
	if b.burst <= 0 {
		b.burst = 1
		for b.burst < rate {
			b.burst++
		}
	}
	b.tokens = b.burst
	return b
}

// Allow spends one token if available. When the bucket is empty it
// reports false together with how long until a token accrues.
func (b *Bucket) Allow(now time.Time) (ok bool, retryAfter time.Duration) {
	if b == nil || b.rate <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := 1 - b.tokens
	return false, time.Duration(need / b.rate * float64(time.Second))
}
