package tenant

import (
	"errors"
	"sync"
)

// ErrFull is returned by Push when the queue is at capacity — the
// caller sheds the request instead of blocking on it.
var ErrFull = errors.New("tenant: queue is full")

// strideScale is the stride-scheduling constant: a tenant's virtual
// clock advances by strideScale/weight per dispatched job, so over any
// contended window tenants are dispatched in proportion to their
// weights.
const strideScale = 1 << 20

// FairQueue is a bounded, weighted fair-share job queue — the
// replacement for ctrlguardd's FIFO campaign channel. Each tenant gets
// its own FIFO; Pop dispatches from the tenant with the smallest
// virtual "pass" (stride scheduling), so one tenant's burst deepens
// only its own backlog and cannot starve the others.
//
// Pop blocks until an item is available or the queue is closed;
// Push never blocks — a full queue is an ErrFull the admission layer
// turns into a 503.
type FairQueue[T any] struct {
	mu       sync.Mutex
	cond     *sync.Cond
	capacity int // bound on Push'd items; PushRecovered ignores it
	size     int
	closed   bool
	vt       uint64 // pass of the most recent dispatch (global virtual time)
	queues   map[string]*flow[T]
}

// flow is one tenant's FIFO and scheduling state.
type flow[T any] struct {
	weight int
	pass   uint64 // virtual finish time of the next dispatch
	items  []T
}

// NewFairQueue builds a fair queue admitting at most capacity queued
// items (minimum 1).
func NewFairQueue[T any](capacity int) *FairQueue[T] {
	if capacity < 1 {
		capacity = 1
	}
	q := &FairQueue[T]{capacity: capacity, queues: make(map[string]*flow[T])}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues v for the named tenant at the given weight, or returns
// ErrFull when the queue is at capacity.
func (q *FairQueue[T]) Push(tenantName string, weight int, v T) error {
	return q.push(tenantName, weight, v, true)
}

// PushRecovered enqueues a job restored from the journal. Recovered
// jobs ride along without eating into the capacity configured for new
// submissions, exactly as the pre-tenancy queue treated them.
func (q *FairQueue[T]) PushRecovered(tenantName string, weight int, v T) {
	q.push(tenantName, weight, v, false)
}

func (q *FairQueue[T]) push(name string, weight int, v T, bounded bool) error {
	if weight <= 0 {
		weight = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if bounded && (q.closed || q.size >= q.capacity) {
		// A closed queue sheds too: a submission racing a graceful
		// drain must not strand a job nobody will ever Pop.
		return ErrFull
	}
	f := q.queues[name]
	if f == nil {
		f = &flow[T]{pass: q.vt}
		q.queues[name] = f
	}
	if len(f.items) == 0 && f.pass < q.vt {
		// A tenant that went idle re-joins at the current virtual time
		// rather than cashing in its accumulated lag all at once.
		f.pass = q.vt
	}
	f.weight = weight
	f.items = append(f.items, v)
	q.size++
	q.cond.Signal()
	return nil
}

// Pop blocks until an item is available, then dispatches from the
// non-empty tenant with the smallest pass (ties broken by name for
// determinism). It returns ok == false once the queue is closed;
// items still queued at close are only reachable through Drain.
func (q *FairQueue[T]) Pop() (v T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		return v, false
	}
	f := q.minFlowLocked()
	v = f.items[0]
	f.items = f.items[1:]
	q.size--
	q.vt = f.pass
	f.pass += strideScale / uint64(f.weight)
	return v, true
}

// minFlowLocked picks the non-empty flow with the smallest pass,
// breaking ties by tenant name so scheduling is deterministic.
func (q *FairQueue[T]) minFlowLocked() *flow[T] {
	var best *flow[T]
	bestName := ""
	for name, f := range q.queues {
		if len(f.items) == 0 {
			continue
		}
		if best == nil || f.pass < best.pass || (f.pass == best.pass && name < bestName) {
			best, bestName = f, name
		}
	}
	return best
}

// Len is the number of queued items.
func (q *FairQueue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// Close wakes every blocked Pop with ok == false. Queued items remain
// for Drain.
func (q *FairQueue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// Drain removes and returns every queued item in fair-share order —
// the shutdown path, where queued-but-unstarted jobs are journaled as
// interrupted for the next start to resume.
func (q *FairQueue[T]) Drain() []T {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]T, 0, q.size)
	for q.size > 0 {
		f := q.minFlowLocked()
		out = append(out, f.items[0])
		f.items = f.items[1:]
		q.size--
		q.vt = f.pass
		f.pass += strideScale / uint64(f.weight)
	}
	return out
}
