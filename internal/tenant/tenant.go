// Package tenant gives ctrlguardd a multi-tenant admission layer: who
// a request belongs to (API keys), how fast it may submit (token
// buckets), how much it may keep queued (quotas), and how the shared
// worker pool is divided when everyone wants it at once (a weighted
// fair-share queue).
//
// The design goal mirrors the paper's: the service must keep
// delivering acceptable service under stress. A misbehaving or merely
// enthusiastic tenant is the server's "fault"; admission control and
// fair-share scheduling are its executable assertions and best-effort
// recovery — the burst is rejected or contained, never allowed to
// starve the other tenants or wedge the daemon.
package tenant

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
)

// Tenant is one API principal and its service envelope. The zero
// values of every limit mean "unlimited", so a config can name only
// the limits it cares about.
type Tenant struct {
	// Name identifies the tenant in job views, metrics, and the
	// journal. Required, unique.
	Name string `json:"name"`

	// Key is the API key presented in the Authorization header
	// (either raw or as "Bearer <key>"). Empty designates the
	// anonymous tenant that unauthenticated requests map to; at most
	// one tenant may have an empty key.
	Key string `json:"key,omitempty"`

	// Weight is the tenant's fair-share weight over the job queue
	// (default 1): under contention, tenants complete work in
	// proportion to their weights.
	Weight int `json:"weight,omitempty"`

	// RatePerSec is the sustained submission rate limit in requests
	// per second (0 = unlimited). Submissions beyond it are rejected
	// with 429 and a Retry-After.
	RatePerSec float64 `json:"ratePerSec,omitempty"`

	// Burst is the token-bucket depth — how many submissions may
	// arrive back-to-back before the rate limit bites (default:
	// max(1, ceil(RatePerSec))).
	Burst int `json:"burst,omitempty"`

	// MaxQueuedJobs caps how many of this tenant's jobs may sit in
	// the queue at once (0 = unlimited; running jobs do not count).
	MaxQueuedJobs int `json:"maxQueuedJobs,omitempty"`

	// MaxQueuedExperiments caps the total experiments across this
	// tenant's queued jobs (0 = unlimited).
	MaxQueuedExperiments int `json:"maxQueuedExperiments,omitempty"`

	// NoCache opts the tenant out of content-addressed result reuse:
	// its submissions always execute, never served from (but still
	// contributing to) the shared memoization store.
	NoCache bool `json:"noCache,omitempty"`
}

// FairWeight is the tenant's scheduling weight, never below 1.
func (t Tenant) FairWeight() int {
	if t.Weight <= 0 {
		return 1
	}
	return t.Weight
}

// DefaultName is the tenant every request maps to on a server with no
// tenant configuration — the open, single-tenant mode ctrlguardd
// started with.
const DefaultName = "public"

// Default is the open-server tenant: no key, no limits.
func Default() Tenant { return Tenant{Name: DefaultName, Weight: 1} }

// ErrUnauthorized reports a request whose API key matched no tenant.
var ErrUnauthorized = errors.New("tenant: unknown or missing API key")

// Registry resolves Authorization headers to tenants. An empty
// registry (no tenants configured) is "open": every request resolves
// to Default(). A non-empty registry requires a matching key, except
// that a configured tenant with an empty Key catches unauthenticated
// requests.
type Registry struct {
	byKey  map[string]Tenant
	byName map[string]Tenant
	anon   *Tenant
}

// NewRegistry validates the tenant set (unique names and keys, at most
// one anonymous tenant) and builds a registry over it.
func NewRegistry(tenants []Tenant) (*Registry, error) {
	r := &Registry{
		byKey:  make(map[string]Tenant, len(tenants)),
		byName: make(map[string]Tenant, len(tenants)),
	}
	for _, t := range tenants {
		if t.Name == "" {
			return nil, fmt.Errorf("tenant: a tenant needs a name (key %q)", t.Key)
		}
		if _, dup := r.byName[t.Name]; dup {
			return nil, fmt.Errorf("tenant: duplicate tenant name %q", t.Name)
		}
		if t.RatePerSec < 0 || t.MaxQueuedJobs < 0 || t.MaxQueuedExperiments < 0 || t.Burst < 0 {
			return nil, fmt.Errorf("tenant: %s has a negative limit", t.Name)
		}
		r.byName[t.Name] = t
		if t.Key == "" {
			if r.anon != nil {
				return nil, fmt.Errorf("tenant: both %s and %s have an empty key; at most one anonymous tenant is allowed", r.anon.Name, t.Name)
			}
			anon := t
			r.anon = &anon
			continue
		}
		if _, dup := r.byKey[t.Key]; dup {
			return nil, fmt.Errorf("tenant: duplicate API key (tenant %s)", t.Name)
		}
		r.byKey[t.Key] = t
	}
	return r, nil
}

// LoadFile reads a JSON tenant configuration: an array of Tenant
// objects.
func LoadFile(path string) ([]Tenant, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenant: read config %s: %w", path, err)
	}
	var tenants []Tenant
	if err := json.Unmarshal(b, &tenants); err != nil {
		return nil, fmt.Errorf("tenant: parse config %s: %w", path, err)
	}
	if _, err := NewRegistry(tenants); err != nil {
		return nil, err
	}
	return tenants, nil
}

// Open reports whether the registry has no tenants configured and thus
// accepts every request as the default tenant.
func (r *Registry) Open() bool {
	return r == nil || (len(r.byName) == 0 && r.anon == nil)
}

// Resolve maps an Authorization header value ("<key>" or
// "Bearer <key>") to a tenant. On an open registry every request —
// authenticated or not — resolves to Default(); otherwise a missing or
// unknown key is ErrUnauthorized (unless an anonymous tenant catches
// the empty key).
func (r *Registry) Resolve(authorization string) (Tenant, error) {
	if r.Open() {
		return Default(), nil
	}
	key := strings.TrimSpace(authorization)
	if rest, ok := strings.CutPrefix(key, "Bearer "); ok {
		key = strings.TrimSpace(rest)
	}
	if key == "" {
		if r.anon != nil {
			return *r.anon, nil
		}
		return Tenant{}, ErrUnauthorized
	}
	t, ok := r.byKey[key]
	if !ok {
		return Tenant{}, ErrUnauthorized
	}
	return t, nil
}

// Lookup finds a tenant by name — the journal-restore path, where only
// the name survived the restart.
func (r *Registry) Lookup(name string) (Tenant, bool) {
	if r.Open() && name == DefaultName {
		return Default(), true
	}
	if r == nil {
		return Tenant{}, false
	}
	t, ok := r.byName[name]
	return t, ok
}

// Usage is one tenant's live queue occupancy — the state its quotas
// are enforced against. It is reconstructed from the journal on
// restart, so a crash never resets accounting.
type Usage struct {
	QueuedJobs        int `json:"queuedJobs"`
	QueuedExperiments int `json:"queuedExperiments"`
}

// Zero reports whether the usage is empty.
func (u Usage) Zero() bool { return u == Usage{} }
