package tenant

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestRegistryResolve(t *testing.T) {
	reg, err := NewRegistry([]Tenant{
		{Name: "acme", Key: "ka", Weight: 2},
		{Name: "umbrella", Key: "ku"},
		{Name: "guest"}, // anonymous
	})
	if err != nil {
		t.Fatal(err)
	}
	for header, want := range map[string]string{
		"ka":        "acme",
		"Bearer ka": "acme",
		" Bearer ku ": "umbrella",
		"":          "guest",
	} {
		got, err := reg.Resolve(header)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", header, err)
		}
		if got.Name != want {
			t.Errorf("Resolve(%q) = %s, want %s", header, got.Name, want)
		}
	}
	if _, err := reg.Resolve("nope"); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("unknown key resolved: %v", err)
	}
	if ten, ok := reg.Lookup("acme"); !ok || ten.Weight != 2 {
		t.Errorf("Lookup(acme) = %+v, %v", ten, ok)
	}
}

func TestRegistryOpenModeAndValidation(t *testing.T) {
	open, err := NewRegistry(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !open.Open() {
		t.Fatal("empty registry not open")
	}
	ten, err := open.Resolve("anything")
	if err != nil || ten.Name != DefaultName {
		t.Fatalf("open registry resolved %+v, %v; want default tenant", ten, err)
	}

	for name, bad := range map[string][]Tenant{
		"dup name":  {{Name: "a", Key: "1"}, {Name: "a", Key: "2"}},
		"dup key":   {{Name: "a", Key: "1"}, {Name: "b", Key: "1"}},
		"two anon":  {{Name: "a"}, {Name: "b"}},
		"no name":   {{Key: "1"}},
		"neg limit": {{Name: "a", Key: "1", MaxQueuedJobs: -1}},
	} {
		if _, err := NewRegistry(bad); err == nil {
			t.Errorf("%s: validation passed", name)
		}
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tenants.json")
	cfg := []Tenant{{Name: "acme", Key: "ka", Weight: 3, RatePerSec: 10, MaxQueuedJobs: 5}}
	b, _ := json.Marshal(cfg)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != cfg[0] {
		t.Fatalf("LoadFile = %+v, want %+v", got, cfg)
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file loaded")
	}
	os.WriteFile(path, []byte(`[{"name":"a"},{"name":"b"}]`), 0o644)
	if _, err := LoadFile(path); err == nil {
		t.Error("invalid config (two anonymous tenants) loaded")
	}
}

func TestBucketRateAndRetryAfter(t *testing.T) {
	b := NewBucket(2, 2) // 2/s, burst 2
	now := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if ok, _ := b.Allow(now); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	ok, retry := b.Allow(now)
	if ok {
		t.Fatal("empty bucket admitted a request")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retryAfter = %v, want (0, 1s] at 2 tokens/s", retry)
	}
	// Half a second refills one token at 2/s.
	if ok, _ := b.Allow(now.Add(500 * time.Millisecond)); !ok {
		t.Fatal("refilled bucket rejected a request")
	}
	// An unlimited bucket never rejects.
	u := NewBucket(0, 0)
	for i := 0; i < 1000; i++ {
		if ok, _ := u.Allow(now); !ok {
			t.Fatal("unlimited bucket rejected")
		}
	}
}

func TestBucketDefaultBurst(t *testing.T) {
	b := NewBucket(2.5, 0)
	now := time.Unix(0, 0)
	admitted := 0
	for i := 0; i < 10; i++ {
		if ok, _ := b.Allow(now); ok {
			admitted++
		}
	}
	if admitted != 3 { // ceil(2.5)
		t.Fatalf("default burst admitted %d, want 3", admitted)
	}
}

// TestFairQueueWeightedShares pins the scheduler's core property: under
// saturation, dispatches per tenant are exactly proportional to weight.
func TestFairQueueWeightedShares(t *testing.T) {
	q := NewFairQueue[string](1000)
	weights := map[string]int{"a": 1, "b": 2, "c": 3}
	for name, w := range weights {
		for i := 0; i < 200; i++ {
			if err := q.Push(name, w, name); err != nil {
				t.Fatal(err)
			}
		}
	}
	counts := map[string]int{}
	for i := 0; i < 120; i++ {
		v, ok := q.Pop()
		if !ok {
			t.Fatal("queue closed early")
		}
		counts[v]++
	}
	// 120 dispatches at weights 1:2:3 → 20/40/60, ±1 for stride phase.
	for name, w := range weights {
		want := 120 * w / 6
		if diff := counts[name] - want; diff < -1 || diff > 1 {
			t.Errorf("tenant %s dispatched %d of 120, want %d±1 (weight %d)", name, counts[name], want, w)
		}
	}
}

// TestFairQueueNoStarvation: a tenant that floods the queue cannot
// delay a light tenant's single job behind its backlog.
func TestFairQueueNoStarvation(t *testing.T) {
	q := NewFairQueue[string](1000)
	for i := 0; i < 500; i++ {
		q.Push("flood", 1, "flood")
	}
	// Drain a few so the flood tenant's pass is well ahead.
	for i := 0; i < 10; i++ {
		q.Pop()
	}
	q.Push("light", 1, "light")
	// The light tenant joins at the current virtual time and must be
	// served within its fair share — here, within 2 dispatches.
	for i := 0; i < 2; i++ {
		if v, _ := q.Pop(); v == "light" {
			return
		}
	}
	t.Fatal("light tenant's job starved behind the flood")
}

func TestFairQueueCapacityAndFIFOWithinTenant(t *testing.T) {
	q := NewFairQueue[int](3)
	for i := 0; i < 3; i++ {
		if err := q.Push("a", 1, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Push("b", 1, 99); !errors.Is(err, ErrFull) {
		t.Fatalf("over-capacity push: %v, want ErrFull", err)
	}
	q.PushRecovered("b", 1, 100) // recovered jobs bypass the bound
	if q.Len() != 4 {
		t.Fatalf("Len = %d, want 4", q.Len())
	}
	// Within one tenant, order is FIFO.
	var aSeen []int
	for i := 0; i < 4; i++ {
		v, ok := q.Pop()
		if !ok {
			t.Fatal("queue closed early")
		}
		if v < 99 {
			aSeen = append(aSeen, v)
		}
	}
	for i, v := range aSeen {
		if v != i {
			t.Fatalf("tenant a order %v, want FIFO", aSeen)
		}
	}
}

func TestFairQueueCloseAndDrain(t *testing.T) {
	q := NewFairQueue[int](10)
	for i := 0; i < 4; i++ {
		q.Push("a", 1, i)
	}

	// A blocked Pop wakes with ok == false on Close.
	empty := NewFairQueue[int](1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, ok := empty.Pop(); ok {
			t.Error("Pop on closed empty queue reported ok")
		}
	}()
	time.Sleep(10 * time.Millisecond)
	empty.Close()
	wg.Wait()

	q.Close()
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop after Close returned an item; Drain owns them")
	}
	got := q.Drain()
	if len(got) != 4 {
		t.Fatalf("Drain returned %d items, want 4", len(got))
	}
	if q.Len() != 0 {
		t.Fatalf("Len after Drain = %d", q.Len())
	}
}

// TestFairQueueConcurrent exercises the queue under the race detector:
// concurrent pushers and poppers, then a close.
func TestFairQueueConcurrent(t *testing.T) {
	q := NewFairQueue[int](10000)
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			name := string(rune('a' + p))
			for i := 0; i < 250; i++ {
				q.Push(name, p+1, i)
			}
		}(p)
	}
	var popped sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for c := 0; c < 3; c++ {
		popped.Add(1)
		go func() {
			defer popped.Done()
			for {
				if _, ok := q.Pop(); !ok {
					return
				}
				mu.Lock()
				total++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for q.Len() > 0 {
		time.Sleep(time.Millisecond)
	}
	q.Close()
	popped.Wait()
	if total != 1000 {
		t.Fatalf("popped %d items, want 1000", total)
	}
}
