package sim

import (
	"math"
	"testing"

	"ctrlguard/internal/control"
	"ctrlguard/internal/plant"
)

func paperLoop() (*control.PI, *plant.Engine, Config) {
	eng := plant.NewEngine(plant.DefaultEngineConfig())
	ctrl := control.NewPI(control.PaperPIConfig(plant.DefaultSampleInterval))
	return ctrl, eng, PaperConfig()
}

func TestRunLength(t *testing.T) {
	ctrl, eng, cfg := paperLoop()
	tr := Run(ctrl, eng, cfg)
	if tr.Len() != plant.DefaultIterations {
		t.Errorf("trace length = %d, want %d", tr.Len(), plant.DefaultIterations)
	}
	for _, s := range [][]float64{tr.T, tr.R, tr.Y} {
		if len(s) != tr.Len() {
			t.Errorf("trace slices have inconsistent lengths")
		}
	}
}

func TestRunTracksReferenceBeforeStep(t *testing.T) {
	ctrl, eng, cfg := paperLoop()
	tr := Run(ctrl, eng, cfg)
	// Around t=2.5 s: no load, settled at 2000 rpm.
	k := int(2.5 / cfg.T)
	if math.Abs(tr.Y[k]-2000) > 5 {
		t.Errorf("y(2.5s) = %v, want ≈ 2000", tr.Y[k])
	}
}

func TestRunTracksReferenceAfterStep(t *testing.T) {
	ctrl, eng, cfg := paperLoop()
	tr := Run(ctrl, eng, cfg)
	k := tr.Len() - 1
	if math.Abs(tr.Y[k]-3000) > 5 {
		t.Errorf("final y = %v, want ≈ 3000", tr.Y[k])
	}
}

func TestRunLoadDisturbanceCausesDip(t *testing.T) {
	ctrl, eng, cfg := paperLoop()
	tr := Run(ctrl, eng, cfg)
	// During the first load bump (3 < t < 4) the speed must dip below
	// the reference by a visible margin.
	minY := math.Inf(1)
	for k := range tr.Y {
		if tr.T[k] > 3 && tr.T[k] < 4 && tr.Y[k] < minY {
			minY = tr.Y[k]
		}
	}
	if minY > 1995 {
		t.Errorf("speed during load bump = %v, expected a dip below 1995", minY)
	}
}

func TestRunOutputWithinThrottleRange(t *testing.T) {
	ctrl, eng, cfg := paperLoop()
	tr := Run(ctrl, eng, cfg)
	for k, u := range tr.U {
		if u < plant.ThrottleMin || u > plant.ThrottleMax {
			t.Fatalf("u[%d] = %v outside throttle range", k, u)
		}
	}
}

func TestRunOutputSaturatesOnStep(t *testing.T) {
	ctrl, eng, cfg := paperLoop()
	tr := Run(ctrl, eng, cfg)
	saturated := false
	for k := range tr.U {
		if tr.T[k] >= 5 && tr.T[k] < 5.5 && tr.U[k] == plant.ThrottleMax {
			saturated = true
		}
	}
	if !saturated {
		t.Error("expected the throttle to saturate at 70 during the reference step (Figure 5)")
	}
}

func TestRunDeterministic(t *testing.T) {
	c1, e1, cfg := paperLoop()
	tr1 := Run(c1, e1, cfg)
	c2, e2, _ := paperLoop()
	tr2 := Run(c2, e2, cfg)
	if MaxAbsDeviation(tr1, tr2) != 0 {
		t.Error("identical runs produced different traces")
	}
}

func TestRunOnIterationHook(t *testing.T) {
	ctrl, eng, cfg := paperLoop()
	var seen []int
	cfg.Iterations = 5
	cfg.OnIteration = func(k int) { seen = append(seen, k) }
	Run(ctrl, eng, cfg)
	if len(seen) != 5 || seen[0] != 0 || seen[4] != 4 {
		t.Errorf("hook iterations = %v, want [0 1 2 3 4]", seen)
	}
}

func TestRunHookCanInjectFault(t *testing.T) {
	ctrl, eng, cfg := paperLoop()
	golden := Run(ctrl, eng, cfg)

	ctrl2, eng2, cfg2 := paperLoop()
	cfg2.OnIteration = func(k int) {
		if k == 300 {
			ctrl2.X = 70 // corrupt the state mid-run
		}
	}
	faulty := Run(ctrl2, eng2, cfg2)
	if MaxAbsDeviation(golden, faulty) <= 0.1 {
		t.Error("state corruption did not perturb the output trace")
	}
}

func TestMaxAbsDeviationCommonPrefix(t *testing.T) {
	a := &Trace{U: []float64{1, 2, 3}}
	b := &Trace{U: []float64{1, 5}}
	if got := MaxAbsDeviation(a, b); got != 3 {
		t.Errorf("MaxAbsDeviation = %v, want 3", got)
	}
	if got := MaxAbsDeviation(b, a); got != 3 {
		t.Errorf("MaxAbsDeviation should be symmetric, got %v", got)
	}
}

func TestMaxAbsDeviationIdentical(t *testing.T) {
	a := &Trace{U: []float64{1, 2, 3}}
	if got := MaxAbsDeviation(a, a); got != 0 {
		t.Errorf("MaxAbsDeviation(a,a) = %v, want 0", got)
	}
}
