// Package sim runs the closed loop of controller and engine for a
// fixed number of samples and records the traces (reference, speed,
// throttle) that the paper's figures and classification rules operate
// on. It also hosts the iteration hook used by variable-level fault
// injection.
package sim

import (
	"ctrlguard/internal/control"
	"ctrlguard/internal/plant"
)

// Trace is the record of one closed-loop run: one entry per control
// iteration.
type Trace struct {
	T []float64 // simulation time at each iteration, seconds
	R []float64 // reference speed, rpm
	Y []float64 // measured engine speed, rpm
	U []float64 // controller output u_lim, degrees
}

// Len returns the number of recorded iterations.
func (tr *Trace) Len() int {
	return len(tr.U)
}

// Config describes a closed-loop run.
type Config struct {
	Iterations int
	T          float64 // sample interval, seconds
	Reference  plant.ReferenceProfile

	// OnIteration, if non-nil, is invoked with the iteration index
	// before each controller step. Fault-injection experiments use it
	// to corrupt controller state mid-run.
	OnIteration func(k int)
}

// PaperConfig returns the paper's run: 650 iterations at 15.4 ms with
// the 2000→3000 rpm reference step.
func PaperConfig() Config {
	return Config{
		Iterations: plant.DefaultIterations,
		T:          plant.DefaultSampleInterval,
		Reference:  plant.PaperReference(),
	}
}

// Run simulates the closed loop: each iteration reads the engine speed,
// computes the controller command, and applies it to the engine for one
// sample interval.
func Run(ctrl control.Controller, eng *plant.Engine, cfg Config) *Trace {
	tr := &Trace{
		T: make([]float64, 0, cfg.Iterations),
		R: make([]float64, 0, cfg.Iterations),
		Y: make([]float64, 0, cfg.Iterations),
		U: make([]float64, 0, cfg.Iterations),
	}
	y := eng.Speed()
	for k := 0; k < cfg.Iterations; k++ {
		if cfg.OnIteration != nil {
			cfg.OnIteration(k)
		}
		t := float64(k) * cfg.T
		r := cfg.Reference(t)
		u := ctrl.Step(r, y)
		y = eng.Step(u)
		tr.T = append(tr.T, t)
		tr.R = append(tr.R, r)
		tr.Y = append(tr.Y, y)
		tr.U = append(tr.U, u)
	}
	return tr
}

// MaxAbsDeviation returns the largest absolute difference between the U
// traces of a and b over their common prefix.
func MaxAbsDeviation(a, b *Trace) float64 {
	n := a.Len()
	if b.Len() < n {
		n = b.Len()
	}
	maxDev := 0.0
	for i := 0; i < n; i++ {
		d := a.U[i] - b.U[i]
		if d < 0 {
			d = -d
		}
		if d > maxDev {
			maxDev = d
		}
	}
	return maxDev
}
