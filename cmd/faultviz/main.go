// Command faultviz reproduces the single-fault example traces of the
// paper: Figure 7 (permanent), Figure 8 (semi-permanent), Figure 9
// (transient) and Figure 10 (an in-range state corruption that evades
// the assertions of Algorithm II).
//
// Usage:
//
//	faultviz [-fig 7|8|9|10|all]
//
// Each figure is produced by one deterministic bit-flip in the
// simulated CPU while it executes the engine-control workload.
package main

import (
	"flag"
	"fmt"
	"os"

	"ctrlguard/internal/classify"
	"ctrlguard/internal/cpu"
	"ctrlguard/internal/viz"
	"ctrlguard/internal/workload"
)

// scenario describes the deterministic injection behind one figure.
type scenario struct {
	title     string
	variant   workload.Variant
	iteration int  // control iteration at whose start the bit flips
	bit       uint // bit of the cache word holding the high word of x
	expect    string
}

var scenarios = map[string]scenario{
	// Flipping a high exponent bit makes x astronomically large: the
	// throttle locks at 70 degrees and the integrator cannot unwind
	// within the window — the paper's "throttle locked at full speed".
	"7": {
		title:     "Figure 7: severe undetected wrong result (permanent)",
		variant:   workload.AlgorithmI,
		iteration: 300,
		bit:       28,
		expect:    "uwr-permanent",
	},
	// Flipping exponent bit 21 of the high word scales x by 4: a large
	// but recoverable deviation that converges within the window.
	"8": {
		title:     "Figure 8: severe undetected wrong result (semi-permanent)",
		variant:   workload.AlgorithmI,
		iteration: 120,
		bit:       21,
		expect:    "uwr-semi-permanent",
	},
	// Flipping a mid mantissa bit nudges x by half a degree: a brief
	// excursion that rapidly converges.
	"9": {
		title:     "Figure 9: minor undetected wrong result (transient)",
		variant:   workload.AlgorithmI,
		iteration: 300,
		bit:       17,
		expect:    "uwr-transient",
	},
	// Algorithm II with an in-range corruption: x doubles (10.5 → 21
	// degrees) at t = 6 s, inside the valid range, so the executable
	// assertions cannot detect it (the paper's Figure 10 showed 10 →
	// 69 degrees).
	"10": {
		title:     "Figure 10: in-range corruption not detected by the assertions (Algorithm II)",
		variant:   workload.AlgorithmII,
		iteration: 390,
		bit:       20,
		expect:    "uwr-semi-permanent",
	},
}

func main() {
	fig := flag.String("fig", "all", "figure to reproduce: 7, 8, 9, 10 or all")
	flag.Parse()

	if err := run(*fig); err != nil {
		fmt.Fprintln(os.Stderr, "faultviz:", err)
		os.Exit(1)
	}
}

func run(fig string) error {
	order := []string{"7", "8", "9", "10"}
	if fig != "all" {
		if _, ok := scenarios[fig]; !ok {
			return fmt.Errorf("unknown figure %q", fig)
		}
		order = []string{fig}
	}
	for _, f := range order {
		if err := show(scenarios[f]); err != nil {
			return err
		}
	}
	return nil
}

func show(sc scenario) error {
	prog := workload.Program(sc.variant)
	golden := workload.Run(prog, workload.PaperRunSpec())
	if golden.Detected() {
		return fmt.Errorf("golden run trapped: %v", golden.Trap)
	}

	spec := workload.PaperRunSpec()
	spec.Injection = &workload.Injection{
		// +1 skips the landing pad so the flip lands inside the
		// iteration's first instructions, before x is loaded.
		At:  golden.IterationStarts[sc.iteration] + 1,
		Bit: cpu.StateBit{Region: cpu.RegionCache, Element: "line0.data0", Bit: sc.bit},
	}
	out := workload.Run(prog, spec)
	if out.Detected() {
		return fmt.Errorf("injection unexpectedly detected: %v", out.Trap)
	}

	verdict := classify.Run(golden.Outputs, out.Outputs,
		!cpu.StatesEqual(golden.FinalState, out.FinalState), classify.DefaultConfig())

	fmt.Println(viz.Chart{
		Title:  sc.title,
		XLabel: "time 0..10 s",
	}.Render(
		viz.Series{Name: "fault-free u_lim", Values: golden.Outputs, Mark: '.'},
		viz.Series{Name: "faulty u_lim", Values: out.Outputs, Mark: '#'},
	))
	fmt.Printf("workload %s, bit %d of the cached state variable flipped at iteration %d\n",
		sc.variant, sc.bit, sc.iteration)
	fmt.Printf("classified: %s (expected %s); deviation window [%d, %d], max %.2f degrees\n\n",
		verdict.Outcome, sc.expect, verdict.FirstDeviation, verdict.LastDeviation, verdict.MaxDeviation)
	return nil
}
