// Command guardtune searches the protection design space for the
// engine controller: each candidate configuration (recovery policy,
// assertion slack, rate-assertion threshold, learned vs static
// assertions) is scored with a fault-injection campaign plus a
// fault-free run, and successive halving concentrates measurement on
// the designs still in contention. The result is a Pareto front over
// {severe failures, value failures, false positives, overhead} and a
// recommended configuration under an overhead budget.
//
// With a fixed -seed the search is fully deterministic: running it
// twice prints identical fronts.
//
// Usage:
//
//	guardtune [-seed 17] [-n0 250] [-rounds 3] [-budget 1.0]
//	          [-policies rollback,freeze] [-slacks 0,0.25] [-rates 0,8]
//	          [-learned false,true] [-out results.jsonl] [-svg front.svg]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ctrlguard/internal/inject"
	"ctrlguard/internal/stats"
	"ctrlguard/internal/tune"
	"ctrlguard/internal/viz"
	"ctrlguard/internal/workload"
)

func main() {
	seed := flag.Uint64("seed", 17, "search seed (fixed seed = identical results)")
	n0 := flag.Int("n0", 0, "round-0 experiments per candidate (0 = default 250)")
	rounds := flag.Int("rounds", 0, "successive-halving rounds (0 = default 3)")
	budget := flag.Float64("budget", 0, "overhead budget for the recommendation (0 = default 1.0)")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	iters := flag.Int("iterations", 0, "closed-loop iterations per run (0 = paper's 650)")
	policies := flag.String("policies", "", "comma-separated recovery policies (default none,rollback,freeze,saturate)")
	learned := flag.String("learned", "", "comma-separated bools: learn assertions from a fault-free run? (default false,true)")
	slacks := flag.String("slacks", "", "comma-separated assertion slack values (default 0,0.1,0.25)")
	rates := flag.String("rates", "", "comma-separated rate-assertion thresholds, 0 disables (default 0,3,8)")
	out := flag.String("out", "", "write per-candidate results as JSON lines to this path")
	svg := flag.String("svg", "", "write the Pareto front as an SVG scatter to this path")
	detStudy := flag.Bool("detector-study", false, "measure the detector design space (CPU-level campaigns per variant x fault model x detector) instead of the guard-parameter search")
	detVariants := flag.String("detector-variants", "", "comma-separated workload variants for -detector-study (default alg1,alg2,mimo-alg1)")
	detModels := flag.String("detector-models", "", "comma-separated fault models for -detector-study (default pc)")
	detN := flag.Int("detector-n", 600, "experiments per -detector-study point")
	flag.Parse()

	if *detStudy {
		if err := runDetectorStudy(*seed, *workers, *detN, *detVariants, *detModels, *out); err != nil {
			fmt.Fprintln(os.Stderr, "guardtune:", err)
			os.Exit(1)
		}
		return
	}

	spec := tune.Spec{
		Seed:               *seed,
		InitialExperiments: *n0,
		Rounds:             *rounds,
		OverheadBudget:     *budget,
		Workers:            *workers,
		Iterations:         *iters,
	}
	var err error
	if spec.Space, err = parseSpace(*policies, *learned, *slacks, *rates); err == nil {
		err = run(spec, *out, *svg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "guardtune:", err)
		os.Exit(1)
	}
}

// parseSpace builds the search space from the axis flags; empty flags
// leave the axis to the tuner's defaults.
func parseSpace(policies, learned, slacks, rates string) (tune.Space, error) {
	var sp tune.Space
	for _, f := range splitList(policies) {
		sp.Policies = append(sp.Policies, tune.Policy(f))
	}
	for _, f := range splitList(learned) {
		v, err := strconv.ParseBool(f)
		if err != nil {
			return sp, fmt.Errorf("-learned %q: %w", f, err)
		}
		sp.Learned = append(sp.Learned, v)
	}
	var err error
	if sp.Slacks, err = parseFloats(slacks); err != nil {
		return sp, fmt.Errorf("-slacks: %w", err)
	}
	if sp.RateLimits, err = parseFloats(rates); err != nil {
		return sp, fmt.Errorf("-rates: %w", err)
	}
	return sp, nil
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range splitList(s) {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func run(spec tune.Spec, outPath, svgPath string) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	outcome, err := tune.Search(context.Background(), spec, func(done, total int) {
		fmt.Fprintf(os.Stderr, "\rguardtune: %d/%d candidate evaluations", done, total)
		if done >= total {
			fmt.Fprintln(os.Stderr)
		}
	})
	if err != nil {
		fmt.Fprintln(os.Stderr)
		return err
	}

	fmt.Printf("Searched %d configurations over %d rounds: %d evaluations, %d fault injections.\n\n",
		outcome.Candidates, len(outcome.Rounds), outcome.Evaluations, outcome.Experiments)
	fmt.Println(frontTable(outcome))

	base := outcome.Baseline
	fmt.Printf("Unprotected baseline: severe %s, value failures %s.\n",
		base.Severe.String(), base.ValueFailures.String())
	if rec := outcome.Recommended; rec != nil {
		fmt.Printf("Recommended: %s — severe %s vs baseline %s at %.0f%% overhead (budget %.0f%%).\n",
			rec.Name, rec.Severe.String(), base.Severe.String(),
			rec.Overhead*100, outcome.Spec.OverheadBudget*100)
	} else {
		fmt.Printf("No front member fits the %.0f%% overhead budget.\n",
			outcome.Spec.OverheadBudget*100)
	}

	if outPath != "" {
		if err := tune.SaveResults(outPath, outcome.Results); err != nil {
			return err
		}
		fmt.Printf("Wrote %d results to %s.\n", len(outcome.Results), outPath)
	}
	if svgPath != "" {
		if err := os.WriteFile(svgPath, []byte(frontSVG(outcome)), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", svgPath, err)
		}
		fmt.Printf("Wrote Pareto scatter to %s.\n", svgPath)
	}
	return nil
}

// runDetectorStudy measures the detector design space: every (variant,
// fault model, detector family) point gets a CPU-level campaign, and
// the study reports detection coverage, residual failures, detector
// noise, and modeled overhead with the Pareto-optimal points marked.
func runDetectorStudy(seed uint64, workers, n int, variants, models, outPath string) error {
	cfg := tune.DetectorStudyConfig{Experiments: n, Seed: seed, Workers: workers}
	for _, v := range splitList(variants) {
		cfg.Space.Variants = append(cfg.Space.Variants, workload.Variant(v))
	}
	for _, m := range splitList(models) {
		parsed, err := inject.ParseModel(m)
		if err != nil {
			return err
		}
		cfg.Space.Models = append(cfg.Space.Models, parsed)
	}
	study, err := tune.RunDetectorStudy(context.Background(), cfg)
	if err != nil {
		return err
	}

	onFront := make(map[string]bool, len(study.Front))
	for _, r := range study.Front {
		onFront[r.Name] = true
	}
	tbl := stats.NewTable(fmt.Sprintf("Detector design space (%d experiments per point)", n),
		"Point", "Detected", "Severe", "Value failures", "False positives", "Overhead", "")
	for _, r := range study.Results {
		note := ""
		if onFront[r.Name] {
			note = "front"
		}
		tbl.AddRow(r.Name, r.Detected.String(), r.Severe.String(), r.ValueFailures.String(),
			r.FalsePositives.String(), fmt.Sprintf("%.1f%%", r.Overhead*100), note)
	}
	fmt.Println(tbl.String())

	if outPath != "" {
		if err := tune.SaveResults(outPath, study.Results); err != nil {
			return err
		}
		fmt.Printf("Wrote %d results to %s.\n", len(study.Results), outPath)
	}
	return nil
}

// frontTable renders the final results, front members first, with the
// recommendation marked.
func frontTable(o *tune.Outcome) string {
	onFront := make(map[string]bool, len(o.Front))
	for _, r := range o.Front {
		onFront[r.Name] = true
	}
	tbl := stats.NewTable("Protection design space, final round",
		"Design", "Severe", "Value failures", "False positives", "Overhead", "")
	row := func(r tune.Result) {
		note := ""
		if onFront[r.Name] {
			note = "front"
		}
		if o.Recommended != nil && r.Name == o.Recommended.Name {
			note = "front, recommended"
		}
		tbl.AddRow(r.Name, r.Severe.String(), r.ValueFailures.String(),
			r.FalsePositives.String(), fmt.Sprintf("%.0f%%", r.Overhead*100), note)
	}
	for _, r := range o.Results {
		if onFront[r.Name] {
			row(r)
		}
	}
	tbl.AddSeparator()
	for _, r := range o.Results {
		if !onFront[r.Name] {
			row(r)
		}
	}
	return tbl.String()
}

// frontSVG plots every final-round result on the overhead/severe
// plane with the Pareto front highlighted.
func frontSVG(o *tune.Outcome) string {
	onFront := make(map[string]bool, len(o.Front))
	for _, r := range o.Front {
		onFront[r.Name] = true
	}
	pts := make([]viz.Point, 0, len(o.Results))
	for _, r := range o.Results {
		pts = append(pts, viz.Point{
			X:     r.Overhead,
			Y:     r.Severe.P(),
			Label: fmt.Sprintf("%s: severe %s, overhead %.0f%%", r.Name, r.Severe.String(), r.Overhead*100),
			Front: onFront[r.Name],
		})
	}
	return viz.Scatter{
		Title:  "Protection designs: severe-failure rate vs overhead",
		XLabel: "modelled overhead (fraction of bare iteration)",
		YLabel: "severe-failure rate",
	}.Render(pts)
}
