// Command goofi runs fault-injection campaigns against the simulated
// CPU executing the engine-control workload, and prints the paper's
// result tables.
//
// Usage:
//
//	goofi -alg 1 -n 9290            reproduce Table 2 (Algorithm I)
//	goofi -alg 2 -n 2372            reproduce Table 3 (Algorithm II)
//	goofi -compare                  reproduce Table 4 (both campaigns)
//	goofi -variant alg2-failstop    campaign on an ablation variant
//	goofi -swifi -n 2000            pre-runtime SWIFI campaign
//	goofi -analyze records.jsonl    analysis phase over logged records
//	goofi -trace line0.data0:28:300 detail-mode propagation of one fault
//	goofi -disasm                   disassemble the workload program
//	goofi -model pc -n 2000         attack-style fault model (-list-models)
//	goofi -detector cfe+automaton   arm in-loop detectors (-list-detectors)
//
// Additional flags select the seed, worker count, and a JSONL file to
// which the per-experiment records are logged (the campaign database).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"ctrlguard/internal/cpu"
	"ctrlguard/internal/detect"
	"ctrlguard/internal/goofi"
	"ctrlguard/internal/inject"
	"ctrlguard/internal/workload"
)

func main() {
	var (
		alg       = flag.Int("alg", 0, "algorithm to test: 1 or 2 (shorthand for -variant)")
		variant   = flag.String("variant", "", "workload variant (alg1, alg2, alg1-regstate, alg2-backup-first, alg2-failstop)")
		n         = flag.Int("n", 9290, "number of faults to inject (paper: 9290 for Alg I, 2372 for Alg II)")
		n2        = flag.Int("n2", 2372, "faults for the second campaign with -compare")
		seed      = flag.Uint64("seed", 2001, "campaign seed")
		workers   = flag.Int("workers", 0, "parallel experiments (0 = GOMAXPROCS)")
		out       = flag.String("out", "", "write per-experiment records to this JSONL file")
		compare   = flag.Bool("compare", false, "run Algorithm I and II campaigns and print Table 4")
		swifi     = flag.Bool("swifi", false, "run a pre-runtime SWIFI campaign instead of SCIFI")
		analyze   = flag.String("analyze", "", "skip injection; analyse records from this JSONL file")
		trace     = flag.String("trace", "", "detail mode: element:bit:iteration, e.g. line0.data0:28:300")
		disasm    = flag.Bool("disasm", false, "print the workload's disassembly and exit")
		mark      = flag.Bool("markdown", false, "with -compare: emit a markdown report instead of tables")
		precision = flag.Float64("precision", 0, "run batches until the severe-rate 95% CI half-width is below this (e.g. 0.001)")
		noPrune   = flag.Bool("no-prune", false, "disable fault-space pruning; simulate every injection")
		noLock    = flag.Bool("no-lockstep", false, "disable lockstep batching; run every simulated experiment solo")
		lockK     = flag.Int("lockstep-k", 0, "experiments per lockstep batch (0 = automatic)")
		model     = flag.String("model", "", "fault model (see -list-models; default is the paper's permanent single bit-flip)")
		burstW    = flag.Int("burst-width", 0, "adjacent-bit span for -model burst (0 = default)")
		detector  = flag.String("detector", "", "arm in-loop detectors: cfe, automaton, or cfe+automaton (see -list-detectors)")
		listMod   = flag.Bool("list-models", false, "list the available fault models and exit")
		listDet   = flag.Bool("list-detectors", false, "list the available detector families and exit")
		quiet     = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	if *listMod {
		for _, m := range inject.Models() {
			fmt.Printf("%-10s %s\n", m, inject.DescribeModel(m))
		}
		return
	}
	if *listDet {
		for _, f := range detect.Families() {
			fmt.Printf("%-10s %s\n", f.Name, f.Description)
		}
		return
	}

	// The same spec type validates ctrlguardd's JSON submissions; the
	// CLI flags are just another front end to it.
	spec := goofi.CampaignSpec{
		Alg: *alg, Variant: *variant, Experiments: *n,
		Seed: *seed, Workers: *workers, Precision: *precision,
		DisablePrune: *noPrune, DisableLockstep: *noLock, LockstepK: *lockK,
		Model: *model, BurstWidth: *burstW, Detector: *detector,
	}
	// Cancel on SIGINT so a long campaign still flushes the records
	// completed so far.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg, err := spec.Resolve()
	if err == nil && spec.Sequential() {
		err = runPrecision(ctx, cfg, *precision)
	} else if err == nil {
		err = run(ctx, cfg, *n, *n2, *out, *compare, *swifi, *analyze, *trace, *disasm, *mark, *quiet)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "goofi:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, base goofi.Config, n, n2 int, out string,
	compare, swifi bool, analyze, trace string, disasm, markdown, quiet bool) error {
	v := base.Variant
	switch {
	case disasm:
		fmt.Print(workload.Program(v).Disassemble())
		return nil
	case analyze != "":
		return runAnalyze(analyze)
	case trace != "":
		return runTrace(v, trace)
	case compare:
		return runCompare(ctx, base, n, n2, markdown, quiet)
	}

	var (
		res *goofi.Result
		err error
	)
	if swifi {
		if base.Detect.Enabled() {
			return fmt.Errorf("-detector does not apply to SWIFI campaigns (detectors monitor the runtime loop)")
		}
		res, err = goofi.RunSWIFI(base)
	} else {
		res, err = campaign(ctx, base, v, n, base.Seed, quiet)
	}
	interrupted := errors.Is(err, context.Canceled) && res != nil
	if err != nil && !interrupted {
		return err
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "\ninterrupted after %d/%d experiments\n", len(res.Records), n)
	}
	if out != "" && len(res.Records) > 0 {
		if err := goofi.SaveRecords(out, res.Records); err != nil {
			return err
		}
		fmt.Printf("records written to %s (%d experiments)\n", out, len(res.Records))
	}
	if interrupted {
		if len(res.Records) == 0 {
			return context.Canceled
		}
		a := goofi.Analyze(res.Records)
		fmt.Println(a.RenderRegionTable(fmt.Sprintf("Partial results for %s (interrupted)", v)))
		return nil
	}
	var a *goofi.Analysis
	title := fmt.Sprintf("Results for %s (cf. paper Table %s)", v, tableFor(v))
	if swifi {
		a = goofi.AnalyzeSWIFI(res.Records)
		title = fmt.Sprintf("Pre-runtime SWIFI results for %s (columns: code image / data image / total)", v)
	} else {
		a = goofi.Analyze(res.Records)
	}
	fmt.Println(a.RenderRegionTable(title))
	fmt.Println(a.Summary())
	return nil
}

// runPrecision runs a sequential campaign until the severe-rate
// confidence interval reaches the requested half-width.
func runPrecision(ctx context.Context, cfg goofi.Config, target float64) error {
	fmt.Printf("sequential campaign on %s until severe-rate CI half-width <= %.4f%%\n", cfg.Variant, target*100)
	res, err := goofi.RunUntilPrecisionContext(ctx, goofi.PrecisionConfig{
		Campaign:        cfg,
		TargetHalfWidth: target,
	})
	if errors.Is(err, context.Canceled) && res != nil {
		fmt.Fprintf(os.Stderr, "interrupted after %d experiments\n", res.Experiments)
		if res.Experiments == 0 {
			return context.Canceled
		}
	} else if err != nil {
		return err
	}
	fmt.Printf("experiments: %d in %d batches (converged: %v)\n", res.Experiments, res.Batches, res.Converged)
	if p := res.Prune; p != nil {
		fmt.Printf("pruning: %d planned, %d simulated, %d pruned dead, %d collapsed into %d classes\n",
			p.Planned, p.Simulated, p.PrunedDead, p.Collapsed, p.Classes)
	}
	if l := res.Lockstep; l != nil {
		fmt.Printf("lockstep: %d lanes in %d batches (K=%d), %d solo runs\n",
			l.Lanes, l.Batches, l.K, l.Solo)
	}
	if d := res.Detect; d != nil {
		fmt.Printf("detectors: %d caught by signature monitor, %d by automaton, %d golden false positives, %.1f%% modeled overhead\n",
			d.CFEDetected, d.AutomatonDetected, d.FalsePositives, d.Overhead*100)
	}
	fmt.Printf("severe rate: %s (half-width %.4f%%)\n", res.Estimate, res.HalfWidth*100)
	a := goofi.Analyze(res.Records)
	fmt.Println(a.Summary())
	return nil
}

// runAnalyze is the standalone analysis phase: load a campaign database
// and print the tables plus the severe-failure investigation.
func runAnalyze(path string) error {
	recs, err := goofi.LoadRecords(path)
	var trunc *goofi.TruncatedError
	if errors.As(err, &trunc) {
		// A crash-interrupted campaign log: analyse what survived.
		fmt.Fprintf(os.Stderr, "goofi: warning: %v (analysing %d intact records)\n", trunc, len(recs))
	} else if err != nil {
		return err
	}
	a := goofi.Analyze(recs)
	fmt.Println(a.RenderRegionTable(fmt.Sprintf("Analysis of %s (%d records)", path, len(recs))))
	fmt.Println(a.Summary())
	q := goofi.NewQuery(recs)
	fmt.Println(q.Severe().Report("severe value failures"))
	fmt.Println(q.Detected("").Report("detected errors"))
	return nil
}

// runTrace runs one detail-mode experiment (GOOFI's execution-trace
// mode) and prints the propagation report.
func runTrace(v workload.Variant, spec string) error {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return fmt.Errorf("bad -trace %q, want element:bit:iteration", spec)
	}
	bit, err := strconv.Atoi(parts[1])
	if err != nil || bit < 0 {
		return fmt.Errorf("bad bit %q", parts[1])
	}
	iter, err := strconv.Atoi(parts[2])
	if err != nil || iter < 0 {
		return fmt.Errorf("bad iteration %q", parts[2])
	}

	region := cpu.RegionCache
	if !strings.HasPrefix(parts[0], "line") {
		region = cpu.RegionRegisters
	}
	runSpec := workload.SpecFor(v)
	golden := workload.Run(workload.Program(v), runSpec)
	if golden.Detected() {
		return fmt.Errorf("reference execution trapped: %v", golden.Trap)
	}
	if iter >= len(golden.IterationStarts) {
		return fmt.Errorf("iteration %d beyond the run (%d)", iter, len(golden.IterationStarts))
	}
	inj := workload.Injection{
		At:  golden.IterationStarts[iter] + 1,
		Bit: cpu.StateBit{Region: region, Element: parts[0], Bit: uint(bit)},
	}
	p, err := goofi.TracePropagation(v, runSpec, inj)
	if err != nil {
		return err
	}
	fmt.Println(p)
	return nil
}

func runCompare(ctx context.Context, base goofi.Config, n, n2 int, markdown, quiet bool) error {
	r1, err := campaign(ctx, base, workload.AlgorithmI, n, base.Seed, quiet)
	if err != nil {
		return err
	}
	r2, err := campaign(ctx, base, workload.AlgorithmII, n2, base.Seed+1, quiet)
	if err != nil {
		return err
	}
	a1, a2 := goofi.Analyze(r1.Records), goofi.Analyze(r2.Records)
	if markdown {
		if err := goofi.WriteMarkdownReport(os.Stdout, a1, a2); err != nil {
			return err
		}
		fmt.Println()
		return goofi.WriteInvestigation(os.Stdout, r1.Records)
	}
	fmt.Println(a1.RenderRegionTable("Results for Algorithm I (cf. paper Table 2)"))
	fmt.Println(a2.RenderRegionTable("Results for Algorithm II (cf. paper Table 3)"))
	fmt.Println(goofi.RenderComparisonTable(a1, a2))
	fmt.Println(a1.Summary())
	fmt.Println(a2.Summary())
	return nil
}

func campaign(ctx context.Context, base goofi.Config, v workload.Variant, n int, seed uint64, quiet bool) (*goofi.Result, error) {
	cfg := base
	cfg.Variant, cfg.Experiments, cfg.Seed = v, n, seed
	if !quiet {
		cfg.Progress = func(done, total int) {
			if done%500 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\r%s: %d/%d experiments", v, done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}
	res, err := goofi.RunContext(ctx, cfg)
	if res != nil && res.Prune != nil && !quiet {
		p := res.Prune
		fmt.Fprintf(os.Stderr, "%s: pruning: %d planned, %d simulated, %d pruned dead, %d collapsed into %d classes\n",
			v, p.Planned, p.Simulated, p.PrunedDead, p.Collapsed, p.Classes)
	}
	if res != nil && res.Lockstep != nil && !quiet {
		l := res.Lockstep
		fmt.Fprintf(os.Stderr, "%s: lockstep: %d lanes in %d batches (K=%d), %d solo runs\n",
			v, l.Lanes, l.Batches, l.K, l.Solo)
	}
	if res != nil && res.Detect != nil && !quiet {
		d := res.Detect
		fmt.Fprintf(os.Stderr, "%s: detectors (%s): %d caught by signature monitor, %d by automaton, %d golden false positives, %.1f%% modeled overhead\n",
			v, base.Detect, d.CFEDetected, d.AutomatonDetected, d.FalsePositives, d.Overhead*100)
	}
	return res, err
}

func tableFor(v workload.Variant) string {
	switch v {
	case workload.AlgorithmI:
		return "2"
	case workload.AlgorithmII:
		return "3"
	default:
		return "2/3, ablation"
	}
}
