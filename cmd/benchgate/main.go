// Command benchgate is the CI benchmark-regression gate. It compares
// two `go test -bench` output files (base branch vs PR), fails when a
// gated benchmark regresses beyond the budget, optionally asserts a
// minimum speedup between two benchmarks of the PR run, and writes a
// machine-readable JSON report. -speedup accepts several
// comma-separated assertions.
//
// Usage:
//
//	go test -run '^$' -short -bench . -benchtime=1x -count=5 . > pr.txt
//	go run ./cmd/benchgate -base base.txt -pr pr.txt \
//	    -gate '^BenchmarkCampaign|^BenchmarkTraceReplay' \
//	    -max-regression 0.20 \
//	    -speedup 'BenchmarkCampaignFullReplay/BenchmarkCampaignWarmStart=2.0,BenchmarkCampaignWarmStart/BenchmarkCampaignPruned=2.0' \
//	    -json BENCH_pr.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strings"

	"ctrlguard/internal/benchcmp"
)

type report struct {
	MaxRegression float64               `json:"maxRegression"`
	Gate          string                `json:"gate"`
	Comparisons   []benchcmp.Comparison `json:"comparisons"`
	Regressions   []benchcmp.Comparison `json:"regressions,omitempty"`
	Speedups      []speedupResult       `json:"speedups,omitempty"`
	Pass          bool                  `json:"pass"`
}

type speedupResult struct {
	Spec  string  `json:"spec"`
	Ratio float64 `json:"ratio"`
	Pass  bool    `json:"pass"`
}

func main() {
	var (
		baseFile      = flag.String("base", "", "bench output of the base branch (optional; no regression gate without it)")
		prFile        = flag.String("pr", "", "bench output of the PR branch (required)")
		gateExpr      = flag.String("gate", `^BenchmarkCampaign|^BenchmarkTraceReplay`, "regexp selecting benchmarks the regression gate applies to")
		maxRegression = flag.Float64("max-regression", 0.20, "fail when a gated benchmark is more than this fraction slower than base")
		speedupSpec   = flag.String("speedup", "", "assert minimum ratios within the PR run, comma-separated, e.g. BenchmarkSlow/BenchmarkFast=2.0")
		jsonOut       = flag.String("json", "", "write a JSON report to this file")
	)
	flag.Parse()

	if *prFile == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -pr is required")
		os.Exit(2)
	}
	gate, err := regexp.Compile(*gateExpr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: bad -gate: %v\n", err)
		os.Exit(2)
	}
	pr, err := parseFile(*prFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	base := benchcmp.Set{}
	if *baseFile != "" {
		if base, err = parseFile(*baseFile); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
	}

	rep := report{
		MaxRegression: *maxRegression,
		Gate:          *gateExpr,
		Comparisons:   benchcmp.Compare(base, pr, gate),
		Pass:          true,
	}
	rep.Regressions = benchcmp.Regressions(rep.Comparisons, *maxRegression)
	if len(rep.Regressions) > 0 {
		rep.Pass = false
	}

	fmt.Printf("%-50s %15s %15s %8s\n", "benchmark", "base ns/op", "pr ns/op", "ratio")
	for _, c := range rep.Comparisons {
		mark := " "
		if c.Gated {
			mark = "*"
		}
		ratio := "new"
		if c.Ratio > 0 {
			ratio = fmt.Sprintf("%.3f", c.Ratio)
		}
		fmt.Printf("%-50s %15.0f %15.0f %8s %s\n", c.Name, c.Base, c.PR, ratio, mark)
	}
	fmt.Printf("(* = gated at +%.0f%%)\n", *maxRegression*100)

	for _, c := range rep.Regressions {
		fmt.Printf("FAIL: %s regressed %.1f%% (base %.0f ns/op, pr %.0f ns/op)\n",
			c.Name, (c.Ratio-1)*100, c.Base, c.PR)
	}

	if *speedupSpec != "" {
		for _, one := range strings.Split(*speedupSpec, ",") {
			one = strings.TrimSpace(one)
			if one == "" {
				continue
			}
			spec, err := benchcmp.ParseSpeedup(one)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
				os.Exit(2)
			}
			ratio, err := benchcmp.CheckSpeedup(pr, spec)
			sr := speedupResult{Spec: one, Ratio: ratio, Pass: err == nil}
			rep.Speedups = append(rep.Speedups, sr)
			if err != nil {
				rep.Pass = false
				fmt.Printf("FAIL: %v\n", err)
			} else {
				fmt.Printf("speedup %s: measured %.2fx\n", one, ratio)
			}
		}
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
	}

	if !rep.Pass {
		os.Exit(1)
	}
	fmt.Println("benchgate: PASS")
}

func parseFile(path string) (benchcmp.Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	set, err := benchcmp.Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(set) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return set, nil
}
