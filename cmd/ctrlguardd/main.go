// Command ctrlguardd serves fault-injection campaigns over HTTP — the
// long-running counterpart to cmd/goofi's one-shot runs, playing the
// role of the paper's interactive GOOFI service: queue campaigns, watch
// their progress live, and query the stored per-experiment records.
//
// Usage:
//
//	ctrlguardd -addr :8077 -data ./results/campaigns -journal ./results/journal
//
// Then, for example:
//
//	curl -d '{"variant":"alg1","n":2000,"seed":2001}' localhost:8077/api/v1/campaigns
//	curl -N localhost:8077/api/v1/campaigns/c000001/events
//	curl localhost:8077/api/v1/campaigns/c000001/report
//	curl -X DELETE localhost:8077/api/v1/campaigns/c000001
//	curl localhost:8077/metrics
//
// With -journal set, every job transition is written through an
// fsync'd write-ahead journal and each finished experiment is appended
// to the campaign's record file as it happens. SIGINT/SIGTERM shuts
// down gracefully: running campaigns stop at the next experiment
// boundary and are journaled as interrupted; the next start replays
// the journal and resumes them from their persisted records, skipping
// every experiment that already completed. A hard crash (SIGKILL,
// power loss) loses at most the unsynced tail of the running
// campaign's records — the restart re-runs just those experiments.
// -no-resume parks interrupted campaigns instead of re-running them.
//
// With -executors N, ctrlguardd becomes a distributed coordinator:
// campaigns are split into shards and leased to N local ctrlexec
// subprocesses (plus any remote ctrlexec -serve instances that
// register themselves), with dead or wedged executors detected by
// lease expiry and their shards re-leased. The merged result is
// byte-identical to an in-process run.
//
// With -tenants pointing at a JSON tenant file, submissions
// authenticate by API key and pass per-tenant admission control: token
// buckets (429), quotas on outstanding work (429), and a weighted
// fair-share queue that sheds overload with 503 instead of buffering
// it. -cache enables content-addressed memoization of completed
// deterministic campaigns; -retain-age/-retain-bytes bound the data
// directory by deleting finished campaigns' record files oldest-first.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"syscall"

	"ctrlguard/internal/server"
	"ctrlguard/internal/tenant"
)

// findCtrlexec locates the executor binary: first as a sibling of the
// running ctrlguardd binary (the usual `go build ./...` layout), then
// on $PATH.
func findCtrlexec() string {
	if self, err := os.Executable(); err == nil {
		sib := filepath.Join(filepath.Dir(self), "ctrlexec")
		if st, err := os.Stat(sib); err == nil && !st.IsDir() {
			return sib
		}
	}
	if p, err := exec.LookPath("ctrlexec"); err == nil {
		return p
	}
	return ""
}

func main() {
	var (
		addr      = flag.String("addr", ":8077", "listen address")
		workers   = flag.Int("workers", 1, "campaigns executed concurrently (each parallelises its own experiments)")
		queue     = flag.Int("queue", 16, "max campaigns waiting in the queue")
		data      = flag.String("data", "", "directory for per-campaign JSONL record files (empty = in-memory only)")
		jdir      = flag.String("journal", "", "directory for the crash-recovery job journal (empty = no journal, no resume)")
		jnlMax    = flag.Int64("journal-max-bytes", 8<<20, "auto-compact the journal past this size (0 = startup-only compaction)")
		noResume  = flag.Bool("no-resume", false, "replay the journal but do not re-run interrupted campaigns")
		executors = flag.Int("executors", 0, "run campaigns sharded across this many local ctrlexec processes (0 = in-process)")
		shardSize = flag.Int("shard-size", 0, "experiments per shard for distributed campaigns (0 = default)")
		execBin   = flag.String("exec-bin", "", "ctrlexec binary for -executors (default: next to this binary, then $PATH)")
		execTTL   = flag.Duration("exec-ttl", 0, "remote executor registration TTL without a heartbeat (0 = 15s default)")
		tenants   = flag.String("tenants", "", "JSON file of tenant definitions (API keys, weights, rate limits, quotas); empty = open single-tenant server")
		cacheDir  = flag.String("cache", "", "directory for the content-addressed result cache (empty = no memoization)")
		cacheMax  = flag.Int64("cache-max-bytes", 0, "LRU-evict the result cache past this size (0 = unbounded)")
		segBytes  = flag.Int64("seg-bytes", 0, "cap per incremental record segment (0 = 4 MiB default)")
		retainAge = flag.Duration("retain-age", 0, "delete record files of campaigns finished longer ago than this (0 = keep forever)")
		retainB   = flag.Int64("retain-bytes", 0, "bound total record bytes of finished campaigns, oldest deleted first (0 = unbounded)")
	)
	flag.Parse()

	var tenantList []tenant.Tenant
	if *tenants != "" {
		var err error
		tenantList, err = tenant.LoadFile(*tenants)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ctrlguardd:", err)
			os.Exit(1)
		}
	}

	if *executors > 0 && *execBin == "" {
		*execBin = findCtrlexec()
		if *execBin == "" {
			fmt.Fprintln(os.Stderr, "ctrlguardd: -executors needs ctrlexec; build it and put it next to ctrlguardd, on $PATH, or pass -exec-bin")
			os.Exit(1)
		}
	}

	if *data != "" {
		if err := os.MkdirAll(*data, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "ctrlguardd:", err)
			os.Exit(1)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv, err := server.New(server.Config{
		Addr:            *addr,
		Workers:         *workers,
		QueueDepth:      *queue,
		DataDir:         *data,
		JournalDir:      *jdir,
		JournalMaxBytes: *jnlMax,
		NoResume:        *noResume,
		Executors:       *executors,
		ExecBin:         *execBin,
		ShardSize:       *shardSize,
		ExecTTL:         *execTTL,
		Tenants:         tenantList,
		CacheDir:        *cacheDir,
		CacheMaxBytes:   *cacheMax,
		SegmentBytes:    *segBytes,
		RetainAge:       *retainAge,
		RetainBytes:     *retainB,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ctrlguardd:", err)
		os.Exit(1)
	}
	if err := srv.ListenAndServe(ctx); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "ctrlguardd:", err)
		os.Exit(1)
	}
}
