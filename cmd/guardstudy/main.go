// Command guardstudy compares protection designs for the engine
// controller under variable-level fault injection: direct IEEE-754
// bit-flips in the controller state at random control iterations
// (thousands of experiments per second, no CPU simulation).
//
// It extends the paper's Algorithm I vs Algorithm II comparison with
// the guard framework's design space: recovery policies, a rate
// assertion that catches the in-range corruptions of the paper's
// Figure 10, and assertions learned automatically from fault-free runs.
//
// Usage:
//
//	guardstudy [-n 4000] [-seed 17] [-json results.jsonl]
package main

import (
	"flag"
	"fmt"
	"os"

	"ctrlguard/internal/control"
	"ctrlguard/internal/core"
	"ctrlguard/internal/goofi"
	"ctrlguard/internal/plant"
	"ctrlguard/internal/stats"
	"ctrlguard/internal/tune"
)

func main() {
	n := flag.Int("n", 4000, "experiments per design")
	seed := flag.Uint64("seed", 17, "campaign seed")
	jsonOut := flag.String("json", "", "also write per-design results as JSON lines to this path (- for stdout, replacing the table)")
	flag.Parse()

	if err := run(*n, *seed, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "guardstudy:", err)
		os.Exit(1)
	}
}

// design is one protection variant under study.
type design struct {
	name string
	why  string
	new  func() control.Stateful
}

func piConfig() control.PIConfig {
	return control.PaperPIConfig(plant.DefaultSampleInterval)
}

func rangeAssert() core.Assertion {
	cfg := piConfig()
	return core.RangeAssertion{Min: cfg.OutMin, Max: cfg.OutMax}
}

// learnAssertions derives range and rate assertions from one fault-free
// closed-loop run, the automated version of the paper's manual
// constraint engineering.
func learnAssertions() (core.Assertion, error) {
	ctrl := control.NewPI(piConfig())
	eng := plant.NewEngine(plant.DefaultEngineConfig())
	ref := plant.PaperReference()
	learner := core.NewBoundsLearner(len(ctrl.State()))

	y := eng.Speed()
	for k := 0; k < plant.DefaultIterations; k++ {
		u := ctrl.Step(ref(float64(k)*plant.DefaultSampleInterval), y)
		y = eng.Step(u)
		if err := learner.Observe(ctrl.State()); err != nil {
			return nil, err
		}
	}
	rng, err := learner.RangeAssertionWithMargin(0.25)
	if err != nil {
		return nil, err
	}
	rate, err := learner.RateAssertionWithMargin(3)
	if err != nil {
		return nil, err
	}
	return core.All(rng, rate), nil
}

func designs() ([]design, error) {
	learned, err := learnAssertions()
	if err != nil {
		return nil, err
	}
	guarded := func(assert core.Assertion, opts ...core.GuardOption) func() control.Stateful {
		return func() control.Stateful {
			g := core.NewGuard(control.NewPI(piConfig()), assert, opts...)
			return core.NewGuardedController(g)
		}
	}
	return []design{
		{
			name: "bare-pi",
			why:  "Algorithm I: no protection",
			new:  func() control.Stateful { return control.NewPI(piConfig()) },
		},
		{
			name: "protected-pi",
			why:  "Algorithm II: hand-written assertions + best effort recovery",
			new:  func() control.Stateful { return control.NewProtectedPI(piConfig()) },
		},
		{
			name: "guard-range",
			why:  "Guard, physical range assertion, rollback",
			new:  guarded(rangeAssert()),
		},
		{
			name: "guard-range-rate",
			why:  "adds a rate assertion: catches in-range jumps (Figure 10)",
			new:  guarded(core.All(rangeAssert(), core.NewRateAssertion(8))),
		},
		{
			name: "guard-saturate",
			why:  "Guard, range assertion, saturate instead of rollback",
			new:  guarded(rangeAssert(), core.WithPolicy(core.Saturate)),
		},
		{
			name: "guard-learned",
			why:  "assertions learned from a fault-free run (range+rate)",
			new:  guarded(learned),
		},
	}, nil
}

func run(n int, seed uint64, jsonOut string) error {
	all, err := designs()
	if err != nil {
		return err
	}

	tbl := stats.NewTable(
		fmt.Sprintf("Protection designs under %d state bit-flips each", n),
		"Design", "Value failures", "Severe", "Severe share", "Notes")
	// Results share tune.Result with guardtune, so a hand-curated
	// study feeds the same stores and plots as the design-space
	// search. False positives and overhead are not measured here; the
	// zero-experiment proportions mark them unknown, not zero.
	results := make([]tune.Result, 0, len(all))
	for _, d := range all {
		res, err := goofi.RunVariable(goofi.VarConfig{
			Name: d.name, New: d.new, Experiments: n, Seed: seed,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", d.name, err)
		}
		vf, sev := goofi.VarSummary(res.Records)
		share := stats.Proportion{Count: sev.Count, N: vf.Count}
		tbl.AddRow(d.name, vf.String(), sev.String(), share.String(), d.why)
		results = append(results, tune.Result{
			Name:          d.name,
			Experiments:   n,
			ValueFailures: vf,
			Severe:        sev,
		})
	}

	if jsonOut == "-" {
		return tune.WriteResults(os.Stdout, results)
	}
	fmt.Println(tbl.String())
	fmt.Println("Faults are injected directly into the controller state, the")
	fmt.Println("channel behind the paper's severe failures; hardware EDMs are")
	fmt.Println("not in play at this level.")
	if jsonOut != "" {
		if err := tune.SaveResults(jsonOut, results); err != nil {
			return err
		}
		fmt.Printf("Wrote %d results to %s.\n", len(results), jsonOut)
	}
	return nil
}
