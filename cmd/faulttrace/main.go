// Command faulttrace is the fault-forensics front end: it captures
// per-experiment propagation traces, inspects and diffs them, and
// renders propagation timelines.
//
// Usage:
//
//	faulttrace capture -variant alg1 -fault line0.data0:28:300 -o f7.trace
//	    capture the trace of one explicitly specified fault
//
//	faulttrace capture -variant alg1 -seed 2001 -exp 17 -n 9290 -o e17.trace
//	    replay experiment 17 of the campaign (variant, seed, n) and
//	    capture its trace — deterministic, byte for byte
//
//	faulttrace show f7.trace
//	    print a trace's header, causal chain, and event iterations
//
//	faulttrace show -defuse -variant alg1
//	    print the workload's disassembly annotated with each
//	    instruction's def/use sets (the fault-space pruner's tables)
//
//	faulttrace diff -fault line0.data0:28:300 -a alg1 -b alg2
//	    capture the same fault under two variants and compare their
//	    causal chains (the paper's Algorithm I vs II argument)
//
//	faulttrace diff a.trace b.trace
//	    compare two previously captured traces
//
//	faulttrace svg f7.trace -o f7.svg
//	    render a trace's propagation timeline as SVG
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"ctrlguard/internal/classify"
	"ctrlguard/internal/cpu"
	"ctrlguard/internal/goofi"
	"ctrlguard/internal/trace"
	"ctrlguard/internal/workload"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "capture":
		err = runCapture(ctx, os.Args[2:])
	case "show":
		err = runShow(os.Args[2:])
	case "diff":
		err = runDiff(ctx, os.Args[2:])
	case "svg":
		err = runSVG(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "faulttrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  faulttrace capture -variant V (-fault element:bit:iteration | -exp N -seed S -n COUNT) [-o FILE]
  faulttrace show FILE
  faulttrace show -defuse [-variant V]
  faulttrace diff (-fault element:bit:iteration [-a V1] [-b V2] | FILE1 FILE2)
  faulttrace svg FILE [-o FILE]`)
}

// parseFault parses the element:bit:iteration shorthand shared with
// the goofi CLI (e.g. line0.data0:28:300) and resolves it against the
// variant's reference run.
func parseFault(v workload.Variant, spec string) (workload.Injection, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return workload.Injection{}, fmt.Errorf("bad fault %q, want element:bit:iteration", spec)
	}
	bit, err := strconv.Atoi(parts[1])
	if err != nil || bit < 0 {
		return workload.Injection{}, fmt.Errorf("bad bit %q", parts[1])
	}
	iter, err := strconv.Atoi(parts[2])
	if err != nil || iter < 0 {
		return workload.Injection{}, fmt.Errorf("bad iteration %q", parts[2])
	}
	region := cpu.RegionCache
	if !strings.HasPrefix(parts[0], "line") {
		region = cpu.RegionRegisters
	}
	golden := workload.Run(workload.Program(v), workload.SpecFor(v))
	if golden.Detected() {
		return workload.Injection{}, fmt.Errorf("reference execution trapped: %v", golden.Trap)
	}
	if iter >= len(golden.IterationStarts) {
		return workload.Injection{}, fmt.Errorf("iteration %d beyond the run (%d)", iter, len(golden.IterationStarts))
	}
	return workload.Injection{
		// +1 skips the landing pad so the flip lands inside the
		// iteration's first instructions, before the state is loaded.
		At:  golden.IterationStarts[iter] + 1,
		Bit: cpu.StateBit{Region: region, Element: parts[0], Bit: uint(bit)},
	}, nil
}

// captureOne captures a trace either for an explicit fault or by
// replaying a campaign experiment.
func captureOne(ctx context.Context, v workload.Variant, fault string, exp int, seed uint64, n int) (*trace.Trace, error) {
	if fault != "" {
		inj, err := parseFault(v, fault)
		if err != nil {
			return nil, err
		}
		return trace.Capture(ctx, v, workload.SpecFor(v), inj, classify.Config{})
	}
	if exp < 0 {
		return nil, fmt.Errorf("need -fault or -exp")
	}
	return goofi.TraceExperiment(ctx, goofi.Config{
		Variant: v, Experiments: n, Seed: seed,
	}, exp)
}

func resolveVariant(alg int, name string) (workload.Variant, error) {
	return goofi.ResolveVariant(alg, name)
}

func runCapture(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("capture", flag.ExitOnError)
	variant := fs.String("variant", "", "workload variant (default alg1)")
	fault := fs.String("fault", "", "explicit fault: element:bit:iteration")
	exp := fs.Int("exp", -1, "campaign experiment index to replay")
	seed := fs.Uint64("seed", 2001, "campaign seed (with -exp)")
	n := fs.Int("n", 0, "campaign experiment count (with -exp; 0 = unbounded)")
	out := fs.String("o", "", "write the encoded trace to this file (default stdout summary only)")
	fs.Parse(args)

	v, err := resolveVariant(0, *variant)
	if err != nil {
		return err
	}
	tr, err := captureOne(ctx, v, *fault, *exp, *seed, *n)
	if err != nil {
		return err
	}
	if *out != "" {
		if err := os.WriteFile(*out, trace.Encode(tr), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d iterations)\n", *out, len(tr.Iterations))
	}
	printTrace(tr)
	return nil
}

func loadTrace(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if tr != nil && err != nil {
		// A truncated trace is still evidence; show what survived.
		fmt.Fprintf(os.Stderr, "faulttrace: warning: %v\n", err)
		return tr, nil
	}
	return tr, err
}

func runShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	defuse := fs.Bool("defuse", false, "print the workload's disassembly annotated with per-instruction def/use sets (the pruner's static tables) instead of a trace")
	variant := fs.String("variant", "", "workload variant (with -defuse; default alg1)")
	fs.Parse(args)

	if *defuse {
		v, err := resolveVariant(0, *variant)
		if err != nil {
			return err
		}
		fmt.Print(workload.Program(v).DisassembleDefUse())
		return nil
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("show needs exactly one trace file")
	}
	tr, err := loadTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	printTrace(tr)
	return nil
}

// printTrace renders the header, the causal chain, and the snapshots
// around the trace's events.
func printTrace(tr *trace.Trace) {
	h := tr.Header
	fmt.Printf("variant    %s\n", h.Variant)
	if h.Experiment >= 0 {
		fmt.Printf("experiment %d (seed %d)\n", h.Experiment, h.Seed)
	}
	fmt.Printf("fault      %s (iteration %d)\n", h.Injection, h.InjectionIteration)
	fmt.Printf("outcome    %s", h.Outcome)
	if h.Mechanism != "" {
		fmt.Printf(" (%s)", h.Mechanism)
	}
	fmt.Println()
	fmt.Println()
	fmt.Print(trace.Analyze(tr, 0))

	fmt.Println()
	fmt.Println("  k     |Δx|        |Δout|      regs  cache  div   events")
	shown := 0
	for _, it := range tr.Iterations {
		interesting := it.Events != 0 || it.StateError() > 0 || it.Deviation() > 0
		if !interesting && shown > 0 {
			continue
		}
		if shown >= 12 {
			fmt.Println("  ... (use svg for the full timeline)")
			break
		}
		fmt.Printf("  %-5d %-11.3g %-11.3g %-5d %-6d %-5d %s\n",
			it.K, it.StateError(), it.Deviation(),
			popcount(it.RegsTouched), popcount(it.CacheTouched),
			it.RegDivergent+it.CacheDivergent, eventNames(it.Events))
		shown++
	}
}

func popcount(v uint32) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

func eventNames(e uint8) string {
	var names []string
	if e&trace.EventInjected != 0 {
		names = append(names, "injected")
	}
	if e&trace.EventStateAssertFailed != 0 {
		names = append(names, "assert-x")
	}
	if e&trace.EventOutputAssertFailed != 0 {
		names = append(names, "assert-u")
	}
	if e&trace.EventTrapped != 0 {
		names = append(names, "trapped")
	}
	return strings.Join(names, ",")
}

func runDiff(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	fault := fs.String("fault", "", "fault to capture under both variants: element:bit:iteration")
	va := fs.String("a", "alg1", "first variant (with -fault)")
	vb := fs.String("b", "alg2", "second variant (with -fault)")
	fs.Parse(args)

	var ta, tb *trace.Trace
	var labelA, labelB string
	switch {
	case *fault != "":
		a, err := resolveVariant(0, *va)
		if err != nil {
			return err
		}
		b, err := resolveVariant(0, *vb)
		if err != nil {
			return err
		}
		if ta, err = captureOne(ctx, a, *fault, -1, 0, 0); err != nil {
			return err
		}
		if tb, err = captureOne(ctx, b, *fault, -1, 0, 0); err != nil {
			return err
		}
		labelA, labelB = string(a), string(b)
	case fs.NArg() == 2:
		var err error
		if ta, err = loadTrace(fs.Arg(0)); err != nil {
			return err
		}
		if tb, err = loadTrace(fs.Arg(1)); err != nil {
			return err
		}
		labelA, labelB = fs.Arg(0), fs.Arg(1)
	default:
		return fmt.Errorf("diff needs -fault or two trace files")
	}

	fmt.Print(trace.Diff(labelA, trace.Analyze(ta, 0), labelB, trace.Analyze(tb, 0)))
	return nil
}

func runSVG(args []string) error {
	fs := flag.NewFlagSet("svg", flag.ExitOnError)
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("svg needs a trace file")
	}
	file := fs.Arg(0)
	if fs.NArg() > 1 {
		// Allow "svg FILE -o OUT": pick up flags after the file too.
		fs.Parse(fs.Args()[1:])
	}
	tr, err := loadTrace(file)
	if err != nil {
		return err
	}
	svg := trace.TimelineSVG(tr, nil)
	if *out == "" {
		fmt.Print(svg)
		return nil
	}
	if err := os.WriteFile(*out, []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}
