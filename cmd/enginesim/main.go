// Command enginesim runs the fault-free closed loop of the paper's
// engine workload and prints Figures 3, 4 and 5: reference versus
// actual engine speed, the load-torque profile, and the controller
// output u_lim.
//
// Usage:
//
//	enginesim [-fig 3|4|5|all] [-csv] [-vm]
//
// With -vm the traces come from the control program executing on the
// simulated CPU instead of the native Go controller; the two agree to
// float32 rounding.
package main

import (
	"flag"
	"fmt"
	"os"

	"ctrlguard/internal/control"
	"ctrlguard/internal/plant"
	"ctrlguard/internal/sim"
	"ctrlguard/internal/viz"
	"ctrlguard/internal/workload"
)

func main() {
	fig := flag.String("fig", "all", "figure to print: 3, 4, 5 or all")
	csv := flag.Bool("csv", false, "print raw columns instead of charts")
	vm := flag.Bool("vm", false, "run the workload on the simulated CPU")
	flag.Parse()

	if err := run(*fig, *csv, *vm); err != nil {
		fmt.Fprintln(os.Stderr, "enginesim:", err)
		os.Exit(1)
	}
}

func run(fig string, csv, vm bool) error {
	tr, err := trace(vm)
	if err != nil {
		return err
	}

	if csv {
		fmt.Println("t,r,y,u,load")
		load := plant.HillyTerrainLoad()
		for k := range tr.U {
			fmt.Printf("%.4f,%.1f,%.3f,%.4f,%.2f\n", tr.T[k], tr.R[k], tr.Y[k], tr.U[k], load(tr.T[k]))
		}
		return nil
	}

	switch fig {
	case "3":
		printFig3(tr)
	case "4":
		printFig4(tr)
	case "5":
		printFig5(tr)
	case "all":
		printFig3(tr)
		printFig4(tr)
		printFig5(tr)
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}

func trace(vm bool) (*sim.Trace, error) {
	if !vm {
		eng := plant.NewEngine(plant.DefaultEngineConfig())
		ctrl := control.NewPI(control.PaperPIConfig(plant.DefaultSampleInterval))
		return sim.Run(ctrl, eng, sim.PaperConfig()), nil
	}
	out := workload.Run(workload.Program(workload.AlgorithmI), workload.PaperRunSpec())
	if out.Detected() {
		return nil, fmt.Errorf("fault-free VM run trapped: %v", out.Trap)
	}
	tr := &sim.Trace{}
	ref := plant.PaperReference()
	for k := range out.Outputs {
		t := float64(k) * plant.DefaultSampleInterval
		tr.T = append(tr.T, t)
		tr.R = append(tr.R, ref(t))
		tr.Y = append(tr.Y, out.Speeds[k])
		tr.U = append(tr.U, out.Outputs[k])
	}
	return tr, nil
}

func printFig3(tr *sim.Trace) {
	fmt.Println(viz.Chart{
		Title:  "Figure 3: reference speed r and actual engine speed y (rpm)",
		XLabel: "time 0..10 s",
	}.Render(
		viz.Series{Name: "reference r", Values: tr.R, Mark: '.'},
		viz.Series{Name: "actual y", Values: tr.Y, Mark: '#'},
	))
}

func printFig4(tr *sim.Trace) {
	load := plant.HillyTerrainLoad()
	vals := make([]float64, len(tr.T))
	for k, t := range tr.T {
		vals[k] = load(t)
	}
	fmt.Println(viz.Chart{
		Title:  "Figure 4: engine load torque",
		XLabel: "time 0..10 s",
	}.Render(viz.Series{Name: "load", Values: vals, Mark: '#'}))
}

func printFig5(tr *sim.Trace) {
	fmt.Println(viz.Chart{
		Title:  "Figure 5: fault-free output u_lim from the PI controller (degrees)",
		XLabel: "time 0..10 s",
	}.Render(viz.Series{Name: "u_lim", Values: tr.U, Mark: '#'}))
}
