// Command ctrlexec executes campaign shards on behalf of a ctrlguardd
// coordinator — the worker half of distributed campaigns. It is
// deliberately dumb: it holds no queue and no durable state. The
// coordinator owns the plan, the leases, and every streamed record;
// ctrlexec just runs the deterministic engine over one contiguous
// experiment-ID range at a time and streams the results back.
//
// Two modes:
//
// One-shot (default): a shard task arrives as JSON on stdin, events
// leave as NDJSON on stdout, and the process exits. This is how the
// coordinator runs local executors — one process per lease, so a
// crashed or killed shard can never poison the next one:
//
//	ctrlexec -timeout 10m -mem 512 < task.json
//
// Serve (-serve): a long-lived HTTP executor for remote machines. The
// coordinator POSTs tasks to /api/v1/shards/run and reads the same
// NDJSON event stream from the response body. With -register the
// executor announces itself to a coordinator and re-announces
// periodically as a liveness heartbeat:
//
//	ctrlexec -serve :9077 -register http://coordinator:8077 -advertise http://worker1:9077
//
// Self-limits: -timeout bounds one shard's wall clock and -mem caps
// the Go heap (debug.SetMemoryLimit), so a pathological shard dies on
// the worker without waiting for the coordinator's lease to expire.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"runtime/debug"
	"strings"
	"sync"
	"syscall"
	"time"

	"ctrlguard/internal/dist"
)

func main() {
	var (
		serve     = flag.String("serve", "", "serve shards over HTTP on this address instead of one-shot stdin mode")
		register  = flag.String("register", "", "coordinator base URL to register with (serve mode)")
		advertise = flag.String("advertise", "", "URL the coordinator should reach this executor at (default http://localhost<serve-addr>)")
		name      = flag.String("name", "", "executor name for registration (default host-pid)")
		timeout   = flag.Duration("timeout", 0, "wall-clock limit per shard (0 = none)")
		memMB     = flag.Int64("mem", 0, "soft Go heap limit in MiB (0 = none)")
	)
	flag.Parse()

	if *memMB > 0 {
		debug.SetMemoryLimit(*memMB << 20)
	}

	logger := log.New(os.Stderr, "ctrlexec: ", log.LstdFlags)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var err error
	if *serve != "" {
		err = serveMode(ctx, logger, *serve, *register, *advertise, *name, *timeout)
	} else {
		err = oneShot(ctx, logger, *timeout)
	}
	if err != nil {
		logger.Fatal(err)
	}
}

// oneShot runs a single shard task from stdin, streaming events to
// stdout. Stdout carries nothing but the NDJSON event stream; all
// logging goes to stderr.
func oneShot(ctx context.Context, logger *log.Logger, timeout time.Duration) error {
	var task dist.ShardTask
	if err := json.NewDecoder(os.Stdin).Decode(&task); err != nil {
		return fmt.Errorf("read shard task from stdin: %w", err)
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	var mu sync.Mutex
	enc := json.NewEncoder(os.Stdout)
	emit := func(ev dist.Event) {
		mu.Lock()
		defer mu.Unlock()
		enc.Encode(&ev)
	}

	logger.Printf("shard %d [%d,%d) of %s (attempt %d, %d resume records)",
		task.Shard, task.Start, task.End, task.Campaign, task.Attempt, len(task.Resume))
	if err := dist.ServeShard(ctx, task, true, emit); err != nil {
		return fmt.Errorf("shard %d: %w", task.Shard, err)
	}
	return nil
}

// serveMode runs the HTTP executor, optionally registering with (and
// heartbeating to) a coordinator until shut down.
func serveMode(ctx context.Context, logger *log.Logger, addr, register, advertise, name string, timeout time.Duration) error {
	if name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "ctrlexec"
		}
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if advertise == "" {
		// ":9077" has no reachable host; a full "host:port" does.
		if strings.HasPrefix(addr, ":") {
			advertise = "http://localhost" + addr
		} else {
			advertise = "http://" + addr
		}
	}

	handler := dist.ShardHandler(logger, true)
	if timeout > 0 {
		inner := handler
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			tctx, cancel := context.WithTimeout(r.Context(), timeout)
			defer cancel()
			inner.ServeHTTP(w, r.WithContext(tctx))
		})
	}
	mux := http.NewServeMux()
	mux.Handle("POST /api/v1/shards/run", handler)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})

	srv := &http.Server{Addr: addr, Handler: mux}
	errc := make(chan error, 1)
	go func() {
		logger.Printf("serving shards on %s (advertising %s)", addr, advertise)
		errc <- srv.ListenAndServe()
	}()

	var hbStop func()
	if register != "" {
		hbStop = heartbeat(ctx, logger, register, name, advertise)
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	if hbStop != nil {
		hbStop()
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(shutCtx)
}

// Initial-registration retry policy: a coordinator that is still
// starting (or briefly partitioned) should not kill the executor, but
// a misconfigured URL should not retry forever either.
const (
	registerAttempts = 6
	registerBaseWait = 500 * time.Millisecond
	registerMaxWait  = 10 * time.Second
)

// heartbeat registers the executor with the coordinator and keeps the
// registration alive by re-posting it — registration and heartbeat are
// the same idempotent upsert, so a coordinator restart just sees the
// executor reappear on the next beat. The initial registration retries
// with jittered exponential backoff before giving up; afterwards the
// beat cadence follows the TTL the coordinator returns (a third of it,
// so two beats can be lost before the lease lapses). Returns a stop
// function that deregisters.
func heartbeat(ctx context.Context, logger *log.Logger, coordinator, name, url string) (stop func()) {
	body, _ := json.Marshal(map[string]string{"name": name, "url": url})
	post := func() (time.Duration, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			coordinator+"/api/v1/executors", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("%s", resp.Status)
		}
		var ack struct {
			TTL string `json:"ttl"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&ack); err == nil {
			if ttl, err := time.ParseDuration(ack.TTL); err == nil && ttl > 0 {
				return ttl, nil
			}
		}
		return 0, nil
	}

	// Bounded initial registration: exponential backoff with jitter so a
	// fleet of executors restarting together does not hammer the
	// coordinator in lockstep.
	interval := 5 * time.Second
	registered := false
	wait := registerBaseWait
	for attempt := 1; attempt <= registerAttempts && ctx.Err() == nil; attempt++ {
		ttl, err := post()
		if err == nil {
			if ttl > 0 {
				interval = ttl / 3
			}
			registered = true
			logger.Printf("registered with %s (heartbeat every %s)", coordinator, interval)
			break
		}
		logger.Printf("register with %s: %v (attempt %d/%d)", coordinator, err, attempt, registerAttempts)
		if attempt == registerAttempts {
			break
		}
		jittered := wait/2 + time.Duration(rand.Int63n(int64(wait)/2+1))
		select {
		case <-ctx.Done():
		case <-time.After(jittered):
		}
		if wait *= 2; wait > registerMaxWait {
			wait = registerMaxWait
		}
	}
	if !registered {
		logger.Printf("registration with %s failed after %d attempts; heartbeats continue every %s",
			coordinator, registerAttempts, interval)
	}

	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				if ttl, err := post(); err != nil {
					logger.Printf("heartbeat to %s: %v", coordinator, err)
				} else if ttl > 0 && ttl/3 != interval {
					interval = ttl / 3
					t.Reset(interval)
				}
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			req, err := http.NewRequest(http.MethodDelete, coordinator+"/api/v1/executors/"+name, nil)
			if err != nil {
				return
			}
			if resp, err := http.DefaultClient.Do(req); err == nil {
				resp.Body.Close()
			}
		})
	}
}
