// Throttle: the paper's headline scenario end to end, on the simulated
// CPU. The same bit-flip is injected into the cache word holding the
// controller state x while the CPU runs Algorithm I and then
// Algorithm II. Under Algorithm I the throttle locks at full speed for
// the rest of the run; under Algorithm II the executable assertion
// catches the out-of-range state and the best effort recovery keeps the
// engine on track.
package main

import (
	"fmt"
	"os"

	"ctrlguard/internal/classify"
	"ctrlguard/internal/cpu"
	"ctrlguard/internal/viz"
	"ctrlguard/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "throttle:", err)
		os.Exit(1)
	}
}

func run() error {
	// The fault: invert exponent bit 28 of the IEEE-754 word holding
	// x, at the start of control iteration 300 (t ≈ 4.6 s). The state
	// jumps from ~7 degrees to ~3·10¹⁰.
	const iteration = 300
	flip := cpu.StateBit{Region: cpu.RegionCache, Element: "line0.data0", Bit: 28}

	for _, v := range []workload.Variant{workload.AlgorithmI, workload.AlgorithmII} {
		prog := workload.Program(v)
		golden := workload.Run(prog, workload.PaperRunSpec())
		if golden.Detected() {
			return fmt.Errorf("golden run trapped: %v", golden.Trap)
		}

		spec := workload.PaperRunSpec()
		spec.Injection = &workload.Injection{
			At:  golden.IterationStarts[iteration] + 1,
			Bit: flip,
		}
		out := workload.Run(prog, spec)
		if out.Detected() {
			return fmt.Errorf("injection detected by %v — unexpected for this scenario", out.Trap.Mech)
		}

		verdict := classify.Run(golden.Outputs, out.Outputs,
			!cpu.StatesEqual(golden.FinalState, out.FinalState), classify.DefaultConfig())

		fmt.Println(viz.Chart{
			Title:  fmt.Sprintf("engine speed, %s with state bit-flip at t=4.6s", v),
			XLabel: "time 0..10 s",
			Height: 14,
		}.Render(
			viz.Series{Name: "fault-free", Values: golden.Speeds, Mark: '.'},
			viz.Series{Name: "faulty", Values: out.Speeds, Mark: '#'},
		))
		fmt.Printf("%s: classified %s, max output deviation %.1f degrees\n\n",
			v, verdict.Outcome, verdict.MaxDeviation)
	}
	fmt.Println("Algorithm II turns the locked-throttle failure into a minor deviation —")
	fmt.Println("the result the paper reports in its abstract.")
	return nil
}
