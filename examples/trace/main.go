// Trace: forensics for a single severe failure.
//
// The same cached-state bit-flip — bit 28 of the state variable's high
// word, early in control iteration 300 — is captured under Algorithm I
// (no recovery) and Algorithm II (assertions + best effort recovery),
// and the two propagation traces are reduced to causal chains and
// diffed. Under Algorithm I the corruption feeds back through the
// integrator for the rest of the run; under Algorithm II the state
// assertion fires in the injected iteration and the recovery block
// cuts the chain short.
package main

import (
	"context"
	"fmt"
	"os"

	"ctrlguard/internal/classify"
	"ctrlguard/internal/cpu"
	"ctrlguard/internal/trace"
	"ctrlguard/internal/workload"
)

// capture runs the variant once to locate iteration 300, then replays
// it with the fault injected and the propagation tracer attached.
func capture(v workload.Variant) *trace.Trace {
	golden := workload.Run(workload.Program(v), workload.PaperRunSpec())
	inj := workload.Injection{
		At:  golden.IterationStarts[300] + 1,
		Bit: cpu.StateBit{Region: cpu.RegionCache, Element: "line0.data0", Bit: 28},
	}
	tr, err := trace.Capture(context.Background(), v, workload.PaperRunSpec(), inj, classify.Config{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
	return tr
}

func main() {
	tr1 := capture(workload.AlgorithmI)
	tr2 := capture(workload.AlgorithmII)

	c1 := trace.Analyze(tr1, 0)
	c2 := trace.Analyze(tr2, 0)
	fmt.Print(trace.Diff("alg1", c1, "alg2", c2))

	// The first iterations after the hit, side by side: alg1's state
	// error persists, alg2's disappears after the recovery block runs.
	fmt.Println("\n  k    alg1 |Δx|    alg2 |Δx|   alg2 events")
	for k := 300; k < 305; k++ {
		i1, i2 := tr1.Find(k), tr2.Find(k)
		if i1 == nil || i2 == nil {
			break
		}
		events := ""
		if i2.Events&trace.EventStateAssertFailed != 0 {
			events = "state assertion failed -> recovered"
		}
		fmt.Printf("  %-4d %-12.3g %-11.3g %s\n", k, i1.StateError(), i2.StateError(), events)
	}
}
