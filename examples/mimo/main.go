// MIMO: the paper's future-work direction — executable assertions and
// best effort recovery for a controller with multiple state variables
// and multiple outputs — using the generalised scheme of §4.3 as
// implemented by core.Guard.
//
// The plant is a crude two-spool jet-engine abstraction: two coupled
// shafts whose speeds are regulated by two actuators (fuel flow and
// nozzle area), each with its own physical range. One state variable of
// the controller is corrupted mid-run; the guard recovers it.
package main

import (
	"fmt"
	"os"

	"ctrlguard/internal/control"
	"ctrlguard/internal/core"
	"ctrlguard/internal/fphys"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mimo:", err)
		os.Exit(1)
	}
}

func buildController() (*control.StateSpace, error) {
	// A diagonal-dominant PI-like MIMO controller: two integrators
	// with light cross-coupling.
	return control.NewStateSpace(
		[][]float64{{1.0, 0.0}, {0.0, 1.0}},        // A: pure integrators
		[][]float64{{0.01, 0.001}, {0.0005, 0.01}}, // B: integration gains
		[][]float64{{1, 0}, {0, 1}},                // C
		[][]float64{{0.3, 0.01}, {0.005, 0.25}},    // D: proportional action
		[]float64{0, 0},                            // actuator lower limits
		[]float64{100, 40},                         // fuel flow / nozzle area upper limits
	)
}

// plantStep advances the crude two-shaft engine one sample.
func plantStep(speeds, u []float64) {
	const dt = 0.02
	speeds[0] += dt * (8*u[0] + 1*u[1] - 0.9*speeds[0])
	speeds[1] += dt * (1.5*u[0] + 6*u[1] - 1.1*speeds[1])
}

func run() error {
	guardedCtrl, err := buildController()
	if err != nil {
		return err
	}
	plainCtrl, err := buildController()
	if err != nil {
		return err
	}
	// Back-calculation anti-windup keeps the integrator states inside
	// the actuator ranges — the invariant the state assertions check,
	// like the anti-windup of the paper's PI controller.
	aw := [][]float64{{0.5, 0}, {0, 0.5}}
	for _, c := range []*control.StateSpace{guardedCtrl, plainCtrl} {
		if err := c.SetAntiWindup(aw); err != nil {
			return err
		}
	}

	// Per-element physical ranges for the state vector (steady-state
	// actuator demands) plus a rate assertion that also catches
	// in-range jumps — the paper's Figure 10 escape route. The rate
	// bound must sit above the largest legitimate per-sample state
	// change (≈13 here during the start-up ramp): a tighter bound
	// false-trips and the rollbacks freeze the controller.
	stateAssert := core.All(
		core.PerElementRange{Min: []float64{-5, -5}, Max: []float64{105, 45}},
		core.NewRateAssertion(20),
	)
	outAssert := core.PerElementRange{Min: []float64{0, 0}, Max: []float64{100, 40}}
	guard := core.NewGuard(guardedCtrl, stateAssert, core.WithOutputAssertion(outAssert))

	var (
		ref          = []float64{400, 250} // desired shaft speeds
		speedsG      = []float64{0, 0}
		speedsP      = []float64{0, 0}
		maxDevG      float64
		maxDevP      float64
		corruptAfter = 600
	)
	for k := 0; k < 1200; k++ {
		if k == corruptAfter {
			// Corrupt state element 1 of both controllers: flip a
			// high exponent bit of the nozzle integrator.
			for _, c := range []*control.StateSpace{guardedCtrl, plainCtrl} {
				x := c.State()
				x[1] = fphys.FlipBit64(x[1], 61)
				c.SetState(x)
			}
		}

		eG := []float64{ref[0] - speedsG[0], ref[1] - speedsG[1]}
		uG, err := guard.Step(eG)
		if err != nil {
			return err
		}
		plantStep(speedsG, uG)

		eP := []float64{ref[0] - speedsP[0], ref[1] - speedsP[1]}
		uP := plainCtrl.Update(eP)
		plantStep(speedsP, uP)

		if k > corruptAfter {
			if d := abs(speedsG[0]-ref[0]) + abs(speedsG[1]-ref[1]); d > maxDevG {
				maxDevG = d
			}
			if d := abs(speedsP[0]-ref[0]) + abs(speedsP[1]-ref[1]); d > maxDevP {
				maxDevP = d
			}
		}
		if k%200 == 0 {
			fmt.Printf("k=%4d  guarded speeds (%7.1f, %7.1f)  unguarded speeds (%7.1f, %7.1f)\n",
				k, speedsG[0], speedsG[1], speedsP[0], speedsP[1])
		}
	}

	s := guard.Stats()
	fmt.Printf("\nafter corrupting one of two state variables at k=%d:\n", corruptAfter)
	fmt.Printf("  guarded:   worst total speed error %8.2f  (guard recovered %d times)\n",
		maxDevG, s.StateRecoveries)
	fmt.Printf("  unguarded: worst total speed error %8.2f\n", maxDevP)
	if maxDevG >= maxDevP {
		return fmt.Errorf("guard did not help (%.2f vs %.2f)", maxDevG, maxDevP)
	}
	return nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
