// Learned: derive executable assertions automatically from fault-free
// operation instead of hand-writing them from physical constraints.
//
// The paper's assertions encode the throttle's physical range; its
// conclusions call for "more sophisticated assertions" to catch the
// in-range corruptions of Figure 10. This example records the state
// envelope and worst rate of change of a PID controller over a
// reference run, builds range + rate assertions with safety margins,
// and shows the guard catching an in-range state jump that a pure
// range assertion would miss.
package main

import (
	"fmt"
	"os"

	"ctrlguard/internal/control"
	"ctrlguard/internal/core"
	"ctrlguard/internal/plant"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "learned:", err)
		os.Exit(1)
	}
}

func newPID() *control.PID {
	return control.NewPID(control.PIDConfig{
		Kp: 0.068, Ki: 0.25, Kd: 0.01, Tf: 0.06,
		T: plant.DefaultSampleInterval, OutMin: 0, OutMax: 70, InitX: 7,
	})
}

func run() error {
	// Phase 1: learn the state envelope from a fault-free run.
	learner := core.NewBoundsLearner(3) // PID state: [x, d, prevE]
	ctrl := newPID()
	eng := plant.NewEngine(plant.DefaultEngineConfig())
	ref := plant.PaperReference()
	y := eng.Speed()
	for k := 0; k < plant.DefaultIterations; k++ {
		u := ctrl.Step(ref(float64(k)*plant.DefaultSampleInterval), y)
		y = eng.Step(u)
		if err := learner.Observe(ctrl.State()); err != nil {
			return err
		}
	}
	min, max, rate := learner.Learned()
	fmt.Println("learned state envelope over one fault-free run:")
	names := []string{"x (integrator)", "d (derivative)", "prevE"}
	for i, name := range names {
		fmt.Printf("  %-16s [%10.3f, %10.3f]  worst step %8.3f\n", name, min[i], max[i], rate[i])
	}

	rng, err := learner.RangeAssertionWithMargin(0.25)
	if err != nil {
		return err
	}
	rateAssert, err := learner.RateAssertionWithMargin(3)
	if err != nil {
		return err
	}

	// Phase 2: guard a fresh controller with the learned assertions.
	guarded := newPID()
	guard := core.NewGuard(guarded, core.All(rng, rateAssert))

	eng2 := plant.NewEngine(plant.DefaultEngineConfig())
	y = eng2.Speed()
	for k := 0; k < plant.DefaultIterations; k++ {
		if k == 300 {
			// A corruption that stays INSIDE the learned envelope
			// (x ∈ [6.5, 18.4] on the reference run): neither the
			// paper's physical-range assertion (0..70) nor even the
			// learned range can see it — the paper's Figure 10
			// escape. The learned rate bound (worst healthy step
			// ≈ 2°, bound 6°) catches the 8° jump.
			guarded.X = 15
			fmt.Printf("\nk=300: state corrupted to x=%v — inside every range bound\n", guarded.X)
		}
		t := float64(k) * plant.DefaultSampleInterval
		u, err := guard.Step([]float64{ref(t), y})
		if err != nil {
			return err
		}
		y = eng2.Step(u[0])
		if k == 300 || k == 301 {
			fmt.Printf("k=%d: u=%.3f x=%.3f (guard recoveries so far: %d)\n",
				k, u[0], guarded.X, guard.Stats().StateRecoveries)
		}
	}

	s := guard.Stats()
	fmt.Printf("\nguard stats: %d steps, %d state violations, %d recoveries\n",
		s.Steps, s.StateViolations, s.StateRecoveries)
	if s.StateRecoveries == 0 {
		return fmt.Errorf("the learned assertions missed the in-range corruption")
	}
	fmt.Println("the learned rate assertion caught a corruption inside every range")
	fmt.Println("bound — the failure mode the paper's Figure 10 leaves open.")
	return nil
}
