// Quickstart: protect a PI controller's state with executable
// assertions and best effort recovery in a few lines.
//
// A bit-flip corrupts the integrator state mid-run. Unguarded, the
// wrong state propagates and the output deviates for a long stretch;
// guarded, the assertion detects the out-of-range state and rolls it
// back to the previous iteration's backup.
package main

import (
	"fmt"

	"ctrlguard/internal/control"
	"ctrlguard/internal/core"
	"ctrlguard/internal/fphys"
	"ctrlguard/internal/plant"
)

func main() {
	cfg := control.PaperPIConfig(plant.DefaultSampleInterval)

	// The controller to protect, and the guard implementing the
	// paper's assertion + backup + best-effort-recovery scheme. The
	// assertion encodes a physical constraint of the controlled
	// object: the throttle angle lies in [0, 70] degrees.
	ctrl := control.NewPI(cfg)
	guard := core.NewGuard(ctrl, core.RangeAssertion{Min: cfg.OutMin, Max: cfg.OutMax})

	eng := plant.NewEngine(plant.DefaultEngineConfig())
	ref := plant.PaperReference()

	y := eng.Speed()
	for k := 0; k < plant.DefaultIterations; k++ {
		if k == 300 {
			// A single-event upset flips a high exponent bit of
			// the state variable: 7 degrees becomes ~9.4e154.
			ctrl.X = fphys.FlipBit64(ctrl.X, 61)
			fmt.Printf("k=%3d  injected bit-flip: state x is now %.3g\n", k, ctrl.X)
		}

		t := float64(k) * plant.DefaultSampleInterval
		u, err := guard.Step([]float64{ref(t), y})
		if err != nil {
			fmt.Println("guard:", err)
			return
		}
		y = eng.Step(u[0])

		if k%100 == 0 || k == 301 {
			fmt.Printf("k=%3d  t=%4.1fs  r=%6.0f  y=%7.1f  u=%6.2f  x=%6.2f\n",
				k, t, ref(t), y, u[0], ctrl.X)
		}
	}

	s := guard.Stats()
	fmt.Printf("\nguard interventions: %d state violations, %d recoveries over %d steps\n",
		s.StateViolations, s.StateRecoveries, s.Steps)
}
