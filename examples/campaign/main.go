// Campaign: a miniature GOOFI fault-injection campaign, end to end.
// Injects a few hundred uniformly sampled bit-flips into the simulated
// CPU while it runs Algorithm I, logs every experiment to a JSONL
// database, reloads it, and prints the outcome distribution in the
// paper's table layout.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"ctrlguard/internal/goofi"
	"ctrlguard/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
}

func run() error {
	res, err := goofi.Run(goofi.Config{
		Variant:     workload.AlgorithmI,
		Experiments: 500,
		Seed:        1,
		Progress: func(done, total int) {
			if done%100 == 0 {
				fmt.Printf("  %d/%d experiments done\n", done, total)
			}
		},
	})
	if err != nil {
		return err
	}

	// Log the campaign database and read it back, the way the paper's
	// analysis phase queries the GOOFI database.
	path := filepath.Join(os.TempDir(), "ctrlguard-campaign.jsonl")
	if err := goofi.SaveRecords(path, res.Records); err != nil {
		return err
	}
	records, err := goofi.LoadRecords(path)
	if err != nil {
		return err
	}
	fmt.Printf("campaign database: %s (%d records)\n\n", path, len(records))

	a := goofi.Analyze(records)
	fmt.Println(a.RenderRegionTable("Mini-campaign results (Algorithm I)"))
	fmt.Println(a.Summary())

	fmt.Println("sample records:")
	for _, r := range records[:3] {
		fmt.Printf("  #%d flip %s/%s bit %d at instruction %d -> %s %s\n",
			r.ID, r.Region, r.Element, r.Bit, r.At, r.Outcome, r.Mechanism)
	}
	return nil
}
