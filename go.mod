module ctrlguard

go 1.22
