// Package ctrlguard reproduces "Reducing Critical Failures for Control
// Algorithms Using Executable Assertions and Best Effort Recovery"
// (Vinter, Aidemark, Folkesson, Karlsson — DSN 2001).
//
// The library packages live under internal/: the guard framework
// (internal/core), the control algorithms (internal/control), the
// engine model (internal/plant), the simulated Thor-like CPU
// (internal/cpu), the workload programs (internal/workload), the fault
// models (internal/inject), the campaign tool (internal/goofi) and the
// failure classification (internal/classify). The benchmarks in this
// directory regenerate every table and figure of the paper; see
// EXPERIMENTS.md for the measured results.
package ctrlguard
